"""Table 1: migration overhead of the four scheduling policies (§3.1).

Paper's numbers (GB over 7 days):

    Policy     Total     99%ile   Peak     Std
    Greedy     306,966   7,093    16,022   1,507
    MIP-24h    236,217   3,711    80,942   4,081
    MIP        209,961   9,379    62,753   2,697
    MIP-peak   212,247   1,684    1,941    562

Shape claims reproduced here: MIP improves total overhead by >30% over
Greedy; MIP variants land within a modest factor of MIP's total;
MIP-peak improves the 99th percentile by >4.2x and standard deviation
by ~2.7x over Greedy, with a dramatically lower peak.
"""

from __future__ import annotations

import numpy as np
import pytest

POLICY_ORDER = ("Greedy", "MIP-24h", "MIP", "MIP-peak")


@pytest.fixture(scope="module")
def comparison(table1_run):
    return table1_run.comparison


def test_table1_policy_comparison(benchmark, comparison, report_writer):
    """The headline table."""

    table = benchmark(comparison.as_table)
    mip_gain = comparison.improvement_total("MIP", "Greedy")
    peak_p99 = comparison.improvement_p99("MIP-peak", "Greedy")
    peak_std = comparison.improvement_std("MIP-peak", "Greedy")
    lines = [
        table,
        "",
        f"MIP total improvement over Greedy: {100 * mip_gain:.0f}%"
        " (paper: >30%)",
        f"MIP-peak p99 improvement over Greedy: {peak_p99:.1f}x"
        " (paper: >4.2x)",
        f"MIP-peak std improvement over Greedy: {peak_std:.1f}x"
        " (paper: 2.7x)",
    ]
    report_writer("table1_policies", "\n".join(lines))

    greedy = comparison.by_policy("Greedy")
    mip = comparison.by_policy("MIP")
    mip_24h = comparison.by_policy("MIP-24h")
    mip_peak = comparison.by_policy("MIP-peak")

    # Paper: MIP improves total by >30% over greedy.
    assert mip_gain > 0.30
    # Paper: MIP-24h sits between greedy and full-horizon MIP on total.
    assert mip.total_gb < mip_24h.total_gb < greedy.total_gb
    # Paper: MIP-peak's total is within a modest factor of MIP's
    # (1-12.5% worse in the paper; allow some slack either way).
    assert mip_peak.total_gb < 1.5 * mip.total_gb
    # Paper: MIP-peak crushes the tail: >4.2x at p99, lower peak and std
    # than greedy.
    assert comparison.improvement_p99("MIP-peak", "Greedy") > 2.0
    assert mip_peak.peak_gb < greedy.peak_gb
    assert mip_peak.std_gb < greedy.std_gb


def test_table1_stable_vms_never_killed(
    benchmark, table1_results, report_writer
):
    """The availability contract: stable VMs are displaced (migrated),
    never dropped — every policy's execution accounts for all stable
    load as either running locally or displaced elsewhere."""

    def run():
        rows = []
        for name, (_, execution, _) in table1_results.items():
            for site in execution.sites:
                rows.append((name, site.name, site.stable_availability()))
        return rows

    rows = benchmark(run)
    lines = ["Stable-VM availability by policy (local-serving fraction)"]
    for name, site_name, availability in rows:
        lines.append(f"  {name} @ {site_name}: {availability:.3f}")
        assert 0.0 <= availability <= 1.0
    report_writer("table1_stable_availability", "\n".join(lines))


def test_table1_mip_respects_capacity(benchmark, table1_results):
    """No policy's placement exceeds a site's physical cores."""
    from repro.sched.overhead import placement_load_series

    def run():
        peaks = {}
        for name, (placement, _, problem) in table1_results.items():
            _, total = placement_load_series(problem, placement)
            peaks[name] = {
                site.name: (float(np.max(total[site.name])),
                            site.total_cores)
                for site in problem.sites
            }
        return peaks

    peaks = benchmark(run)
    for name, sites in peaks.items():
        for site_name, (load, cores) in sites.items():
            assert load <= cores + 1e-6, (name, site_name)


def test_wan_active_fraction(
    benchmark, table1_results, report_writer
):
    """§5: the migration traffic occupies a 200 Gbps WAN link only a
    small share of the time, so migration energy is negligible."""

    def run():
        fractions = {}
        for name, (_, execution, problem) in table1_results.items():
            series = execution.total_transfer_series()
            step_seconds = problem.grid.step_seconds
            rate = 200e9 / 8.0
            busy = np.minimum(series / rate, step_seconds)
            fractions[name] = float(
                busy.sum() / (len(series) * step_seconds)
            )
        return fractions

    fractions = benchmark(run)
    lines = ["WAN busy fraction at 200 Gbps (per multi-VB group)"]
    for name, fraction in fractions.items():
        lines.append(f"  {name}: {100 * fraction:.2f}%")
    report_writer("table1_wan_fraction", "\n".join(lines))
    # Paper: migration occurs 2-4% of the time; all policies stay low.
    assert all(f < 0.10 for f in fractions.values())


def test_table1_manifest_telemetry(table1_run):
    """The run manifest records every pipeline stage and artifact."""
    manifest = table1_run.manifest
    assert manifest.scenario_name == "table1"
    assert table1_run.manifest_path is not None
    assert table1_run.manifest_path.exists()
    for stage in ("traces", "workload", "forecast", "analyze"):
        assert manifest.stage(stage).seconds >= 0.0
    for policy in POLICY_ORDER:
        assert f"solve:{policy}" in manifest.artifacts
        assert manifest.stage(f"execute:{policy}").seconds >= 0.0
    assert set(manifest.summary["policies"]) == set(POLICY_ORDER)
