"""Ablation: the admission utilization cap (70% in the paper).

The headroom between admitted load and powered capacity is what lets
minor power dips be absorbed by powering down unallocated cores.
Sweeping the cap from 50% to 95% should show the silent-change fraction
falling and migration traffic rising as headroom shrinks.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.cluster import Datacenter, DatacenterConfig
from repro.traces import synthesize_catalog_traces
from repro.units import grid_days
from repro.workload import generate_vm_requests, workload_matched_to_power

from conftest import SEED, START

CAPS = (0.5, 0.7, 0.95)


def test_ablation_utilization_cap(benchmark, catalog, report_writer):
    grid = grid_days(START, 14)
    traces = synthesize_catalog_traces(
        catalog.subset(["BE-wind"]), grid, seed=SEED + 30
    )
    trace = traces["BE-wind"]

    def run():
        results = {}
        for cap in CAPS:
            config = DatacenterConfig(admission_utilization=cap)
            workload = workload_matched_to_power(
                float(trace.values.mean()),
                config.cluster.total_cores,
                utilization=cap,
            )
            requests = generate_vm_requests(
                grid, workload, seed=SEED + 31
            )
            result = Datacenter(config, trace).run(requests)
            results[cap] = (
                result.power_changes_without_migration_fraction(),
                result.out_gb_series().sum()
                + result.in_gb_series().sum(),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{int(cap * 100)}%", f"{100 * silent:.0f}%", round(total)]
        for cap, (silent, total) in results.items()
    ]
    table = format_table(
        ["Admission cap", "Silent power changes", "Total transfer (GB)"],
        rows,
        title="Ablation: utilization headroom vs migration absorption",
    )
    report_writer("ablation_utilization", table)

    # More headroom (lower cap) -> more dips absorbed silently.
    silent = {cap: results[cap][0] for cap in CAPS}
    assert silent[0.5] >= silent[0.95]
    # And at the paper's 70%, most power changes stay silent.
    assert silent[0.7] > 0.6
