"""Figure 2: quantifying solar and wind variability (§2.2).

Fig 2a — a 4-day sample showing solar's diurnal pattern with overcast
vs. sunny days and spiky wind; Fig 2b — the 1-year CDF with solar
>50% zeros and tail ratios of ~4x (solar) / ~2x (wind) at p99/p75.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_cdf_points, format_series_sample
from repro.traces.weather import default_solar_regimes
from repro.traces import synthesize_solar
from repro.units import grid_days

from conftest import START


def _find_contrasting_days(trace):
    """Locate an overcast day followed (within the trace) by a much
    sunnier one, the Fig-2a contrast (3.5% vs 77% peaks)."""
    per_day = trace.grid.steps_per_day()
    days = trace.values.reshape(-1, per_day)
    peaks = days.max(axis=1)
    best = None
    for d in range(len(peaks) - 1):
        contrast = peaks[d + 1] - peaks[d]
        if best is None or contrast > best[1]:
            best = (d, contrast)
    return best[0], peaks


def test_fig2a_time_series(benchmark, year_traces, report_writer):
    """Fig 2a: 4-day solar/wind sample with day-type contrast."""
    solar = year_traces["BE-solar"]
    wind = year_traces["BE-wind"]

    def run():
        day, peaks = _find_contrasting_days(solar)
        return day, peaks

    day, peaks = benchmark(run)
    window_solar = solar.slice_days(day, 4)
    window_wind = wind.slice_days(day, 4)

    lines = [
        "Figure 2a: 4-day normalized power sample (16 evenly spaced"
        " points per trace)",
        f"window: days {day}..{day + 4} of the year",
        f"solar day peaks in window: "
        + ", ".join(f"{p:.2f}" for p in peaks[day : day + 4]),
        "solar:",
        format_series_sample(window_solar.values, 16),
        "wind:",
        format_series_sample(window_wind.values, 16),
    ]
    report_writer("fig2a_variability_sample", "\n".join(lines))

    # Shape claims: a dim day next to a bright day exists somewhere in
    # the year (paper saw 3.5% vs 77%), and wind stays off the floor.
    assert peaks[day] < 0.45
    assert peaks[day + 1] > 0.60
    assert window_wind.values.min() >= 0.0
    # Solar zero at night inside the window.
    hours = window_solar.grid.hour_of_day()
    assert np.all(window_solar.values[hours < 3] == 0.0)


def test_fig2b_cdf(benchmark, year_traces, report_writer):
    """Fig 2b: 1-year CDF of normalized generation."""
    solar = year_traces["BE-solar"]
    wind = year_traces["BE-wind"]

    def run():
        return {
            "solar": (
                solar.zero_fraction(),
                solar.percentile(50),
                solar.tail_ratio(99, 75),
            ),
            "wind": (
                wind.zero_fraction(),
                wind.percentile(50),
                wind.tail_ratio(99, 75),
            ),
        }

    stats = benchmark(run)
    lines = ["Figure 2b: 1-year generation CDF"]
    for kind, trace in (("solar", solar), ("wind", wind)):
        zero, median, tail = stats[kind]
        lines.append(
            f"{kind}: zero-fraction {zero:.2f}, median {median:.2f},"
            f" p99/p75 {tail:.2f}"
        )
        lines.append(format_cdf_points(trace.values))
    report_writer("fig2b_generation_cdf", "\n".join(lines))

    solar_zero, solar_median, solar_tail = stats["solar"]
    wind_zero, wind_median, wind_tail = stats["wind"]
    # Paper: >50% of solar samples are zero (nights).
    assert solar_zero > 0.45
    # Paper: wind median reaches at most ~20% of peak capacity.
    assert wind_median < 0.30
    # Paper: p99/p75 of ~4x for solar, ~2x for wind.
    assert 3.0 < solar_tail < 7.0
    assert 1.5 < wind_tail < 3.5
    # Wind rarely touches zero, unlike solar.
    assert wind_zero < solar_zero / 3


def test_fig2a_seasonality(benchmark, year_traces, report_writer):
    """§2.2: winter solar peaks ~75% below summer at these latitudes."""
    solar = year_traces["BE-solar"]

    def run():
        per_day = solar.grid.steps_per_day()
        daily_peaks = solar.values.reshape(-1, per_day).max(axis=1)
        # January and late June windows.
        winter = float(np.percentile(daily_peaks[:31], 90))
        summer = float(np.percentile(daily_peaks[160:191], 90))
        return winter, summer

    winter, summer = benchmark(run)
    report_writer(
        "fig2a_seasonality",
        f"solar p90 daily peak: winter {winter:.2f} vs summer"
        f" {summer:.2f} ({100 * (1 - winter / summer):.0f}% lower;"
        " paper: ~75% less in winter)",
    )
    assert winter < 0.55 * summer


def test_fig2a_day_types(benchmark, report_writer):
    """The three solar day types (sunny / variable / overcast) that
    drive Fig 2a's qualitative contrast.  Uses an early-summer day, as
    the paper's sample window does (May 2020): peak output is near the
    seasonal maximum, so the day-type contrast is undiluted."""
    from datetime import datetime

    grid = grid_days(datetime(2015, 6, 1), 1)
    model = default_solar_regimes()

    def run():
        peaks = {}
        for name in model.names:
            index = model.names.index(name)
            trace = synthesize_solar(
                grid, seed=7, regime_indices=np.array([index])
            )
            peaks[name] = float(trace.values.max())
        return peaks

    peaks = benchmark(run)
    lines = ["Figure 2a day types: peak normalized output per regime"]
    for name, peak in peaks.items():
        lines.append(f"  {name}: {peak:.3f}")
    report_writer("fig2a_day_types", "\n".join(lines))

    assert peaks["overcast"] < 0.2       # paper: ~3.5%-ish peaks
    assert peaks["sunny"] > 0.55         # paper: ~77% peak
    assert peaks["overcast"] < peaks["variable"] <= peaks["sunny"] + 0.25
