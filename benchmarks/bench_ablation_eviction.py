"""Ablation: eviction-order and allocation-policy choices (§3 setup).

The paper evicts round-robin across servers without specifying the
within-server victim, and uses a consolidating allocator.  This bench
quantifies both choices: victim order changes how many bytes each
eviction moves; a spreading (worst-fit) allocator leaves less
powered-down headroom than a packing (best-fit) one.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.cluster import Datacenter, DatacenterConfig, EvictionOrder
from repro.traces import synthesize_catalog_traces
from repro.units import grid_days
from repro.workload import generate_vm_requests, workload_matched_to_power

from conftest import SEED, START


def _run(trace, **config_overrides):
    config = DatacenterConfig(**config_overrides)
    workload = workload_matched_to_power(
        float(trace.values.mean()), config.cluster.total_cores
    )
    requests = generate_vm_requests(trace.grid, workload, seed=SEED + 41)
    return Datacenter(config, trace).run(requests)


@pytest.fixture(scope="module")
def wind_trace(catalog):
    grid = grid_days(START, 10)
    traces = synthesize_catalog_traces(
        catalog.subset(["BE-wind"]), grid, seed=SEED + 40
    )
    return traces["BE-wind"]


def test_ablation_eviction_order(benchmark, wind_trace, report_writer):
    def run():
        results = {}
        for order in EvictionOrder:
            result = _run(wind_trace, eviction_order=order)
            out = result.out_gb_series()
            results[order.value] = (
                out.sum(),
                int((out > 0).sum()),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [order, round(total), steps]
        for order, (total, steps) in results.items()
    ]
    table = format_table(
        ["Victim order", "Out-migration total (GB)", "Migration steps"],
        rows,
        title="Ablation: within-server eviction order",
    )
    report_writer("ablation_eviction_order", table)

    # Smallest-memory victims minimize bytes per evicted core only when
    # memory/core varies; with the default catalog it is uniform, so
    # totals should be within the same ballpark — the check is that no
    # order catastrophically inflates traffic.
    totals = [total for total, _ in results.values()]
    assert max(totals) < 3 * min(totals)


def test_ablation_allocation_policy(benchmark, wind_trace, report_writer):
    def run():
        results = {}
        for policy in ("bestfit", "worstfit"):
            result = _run(wind_trace, allocation=policy)
            results[policy] = (
                result.out_gb_series().sum()
                + result.in_gb_series().sum(),
                result.power_changes_without_migration_fraction(),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [policy, round(total), f"{100 * silent:.0f}%"]
        for policy, (total, silent) in results.items()
    ]
    table = format_table(
        ["Allocation", "Total transfer (GB)", "Silent power changes"],
        rows,
        title="Ablation: consolidating vs spreading allocation",
    )
    report_writer("ablation_allocation_policy", table)
    # Both run to completion with sane outputs; consolidation should
    # not be (much) worse than spreading.
    assert results["bestfit"][0] <= results["worstfit"][0] * 1.5


def test_ablation_pause_degradable(benchmark, wind_trace, report_writer):
    """§3.1's degradable absorption at the single-site level: pausing
    degradable VMs in place cuts migration traffic."""

    def run():
        with_pause = _run(wind_trace, pause_degradable=True)
        without = _run(wind_trace, pause_degradable=False)
        return (
            with_pause.out_gb_series().sum(),
            without.out_gb_series().sum(),
        )

    paused_total, plain_total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report_writer(
        "ablation_pause_degradable",
        f"out-migration with degradable pausing: {paused_total:,.0f} GB\n"
        f"out-migration without: {plain_total:,.0f} GB",
    )
    assert paused_total < plain_total
