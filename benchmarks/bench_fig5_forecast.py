"""Figure 5: energy prediction quality by horizon (§3.1).

The paper reports ELIA's forecast MAPE: 8.5-9% at 3 hours ahead,
18-25% a day ahead, and 44%/75% (solar/wind) a week ahead — accurate
enough that the sharp power swings driving migrations are visible at
least a day in advance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.forecast import (
    ClimatologyForecaster,
    NoisyOracleForecaster,
    PersistenceForecaster,
    horizon_mape_profile,
)

from conftest import SEED

HORIZONS = {"3h": 12, "day": 96, "week": 96 * 7}


def test_fig5_mape_bands(benchmark, quarter_traces, report_writer):
    """MAPE per horizon for the calibrated forecaster, solar and wind."""
    solar = quarter_traces["BE-solar"]
    wind = quarter_traces["BE-wind"]
    model = NoisyOracleForecaster(seed=SEED)

    def run():
        return {
            "solar": horizon_mape_profile(model, solar, HORIZONS, 48),
            "wind": horizon_mape_profile(model, wind, HORIZONS, 48),
        }

    profiles = benchmark(run)
    rows = []
    for kind in ("solar", "wind"):
        profile = profiles[kind]
        rows.append(
            [
                kind,
                f"{100 * profile['3h']:.1f}%",
                f"{100 * profile['day']:.1f}%",
                f"{100 * profile['week']:.1f}%",
            ]
        )
    table = format_table(
        ["Source", "3h-ahead", "Day-ahead", "Week-ahead"],
        rows,
        title=(
            "Figure 5: forecast MAPE by horizon"
            " (paper: 3h 8.5-9%, day 18-25%, week 44-75%)"
        ),
    )
    report_writer("fig5_forecast_mape", table)

    for kind in ("solar", "wind"):
        profile = profiles[kind]
        assert 0.04 < profile["3h"] < 0.15
        assert 0.13 < profile["day"] < 0.35
        assert 0.33 < profile["week"] < 0.90
        # Monotone degradation with horizon.
        assert profile["3h"] < profile["day"] < profile["week"]


def test_fig5_sharp_changes_predicted(
    benchmark, quarter_traces, report_writer
):
    """Paper: the bulk of migrations occur at *sharp* power changes,
    which are predictable with at least a day of notice.

    Check that at the trace's sharpest day-over-day swings, the
    day-ahead forecast gets the direction of change right.
    """
    wind = quarter_traces["BE-wind"]
    model = NoisyOracleForecaster(seed=SEED)
    per_day = wind.grid.steps_per_day()

    def run():
        daily = wind.values[: (len(wind) // per_day) * per_day].reshape(
            -1, per_day
        ).mean(axis=1)
        swings = np.abs(np.diff(daily))
        sharp_days = np.argsort(swings)[-10:]  # 10 sharpest transitions
        correct = 0
        for day in sharp_days:
            issue = day * per_day
            forecast = model.forecast(wind, issue, 2 * per_day)
            predicted_change = (
                forecast.values[per_day:].mean()
                - forecast.values[:per_day].mean()
            )
            actual_change = daily[day + 1] - daily[day]
            if np.sign(predicted_change) == np.sign(actual_change):
                correct += 1
        return correct, len(sharp_days)

    correct, total = benchmark(run)
    report_writer(
        "fig5_sharp_change_prediction",
        f"sharp day-over-day power swings with correctly predicted"
        f" direction (day-ahead): {correct}/{total}"
        " (paper: sharp changes are resilient to forecast error)",
    )
    assert correct >= int(0.8 * total)


def test_fig5_baseline_comparison(
    benchmark, quarter_traces, report_writer
):
    """Persistence/climatology bracket the calibrated forecaster."""
    wind = quarter_traces["BE-wind"]
    oracle = NoisyOracleForecaster(seed=SEED)
    persistence = PersistenceForecaster()
    climatology = ClimatologyForecaster()

    def run():
        return {
            name: horizon_mape_profile(model, wind, HORIZONS, 96)
            for name, model in (
                ("oracle", oracle),
                ("persistence", persistence),
                ("climatology", climatology),
            )
        }

    profiles = benchmark(run)
    rows = [
        [name, *(f"{100 * p[h]:.0f}%" for h in HORIZONS)]
        for name, p in profiles.items()
    ]
    table = format_table(
        ["Model", *HORIZONS], rows,
        title="Forecast baselines (wind, MAPE)",
    )
    report_writer("fig5_baselines", table)

    # The weather-informed forecaster beats persistence beyond a day.
    assert profiles["oracle"]["day"] < profiles["persistence"]["day"]
    assert profiles["oracle"]["week"] < profiles["persistence"]["week"]
