"""Ablation: checkpoint interval for degradable (harvest) jobs.

§2.3 hands the variable energy to "batch or ML training jobs"; §4 cites
CheckFreq-style checkpointing as the mechanism that makes preemption
cheap.  This bench sweeps the checkpoint interval on a solar site
(whose nightly outages preempt everything) and shows the classic
U-curve — overhead dominates at small intervals, lost work at large —
with Young's analytic optimum landing near the empirical sweet spot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.batch import (
    BatchJob,
    CheckpointPolicy,
    HarvestScheduler,
    variable_capacity_series,
    young_daly_interval,
)
from repro.traces import synthesize_catalog_traces
from repro.units import grid_days

from conftest import SEED, START

INTERVALS = (1, 4, 16, 64, 256)
OVERHEAD = 0.15


@pytest.fixture(scope="module")
def harvest_setup(catalog):
    grid = grid_days(START, 14)
    trace = synthesize_catalog_traces(
        catalog.subset(["ES-solar"]), grid, seed=SEED + 90
    )["ES-solar"]
    capacity = variable_capacity_series(trace, 2000, 0.05)
    return capacity


def _jobs(seed):
    rng = np.random.default_rng(seed)
    return [
        BatchJob(
            i,
            int(rng.integers(0, 96)),
            int(rng.integers(2, 16)),
            float(rng.integers(100, 800)),
        )
        for i in range(60)
    ]


def test_checkpoint_interval_ucurve(
    benchmark, harvest_setup, report_writer
):
    capacity = harvest_setup

    def run():
        results = {}
        for interval in INTERVALS:
            policy = CheckpointPolicy(interval, OVERHEAD)
            result = HarvestScheduler(policy).run(
                _jobs(SEED + 91), capacity
            )
            results[interval] = result
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for interval, result in results.items():
        rows.append(
            [
                interval,
                round(result.useful_core_steps),
                round(result.checkpoint_core_steps),
                round(result.lost_core_steps),
                f"{100 * result.goodput_fraction():.1f}%",
                len(result.finished_jobs),
            ]
        )
    table = format_table(
        ["Interval", "Useful", "Checkpoint", "Lost", "Goodput",
         "Finished"],
        rows,
        title="Checkpoint interval U-curve"
        f" (overhead {OVERHEAD:.0%} per checkpoint, solar harvest)",
    )
    report_writer("ablation_checkpoint_interval", table)

    goodput = {i: r.goodput_fraction() for i, r in results.items()}
    # The extremes are both worse than the middle of the sweep.
    best = max(goodput, key=goodput.get)
    assert best not in (INTERVALS[0], INTERVALS[-1])
    # Checkpoint overhead falls monotonically with interval; lost work
    # rises from the smallest to the largest interval.
    overheads = [results[i].checkpoint_core_steps for i in INTERVALS]
    assert all(b <= a + 1e-9 for a, b in zip(overheads, overheads[1:]))
    assert (
        results[INTERVALS[-1]].lost_core_steps
        > results[INTERVALS[0]].lost_core_steps
    )


def test_young_daly_near_empirical_best(
    benchmark, harvest_setup, report_writer
):
    capacity = harvest_setup

    def run():
        # Estimate MTBF of the variable supply: mean steps between
        # capacity-collapse events (any step where capacity halves).
        drops = np.flatnonzero(capacity[1:] < 0.5 * capacity[:-1])
        mtbf = len(capacity) / max(len(drops), 1)
        return young_daly_interval(mtbf, OVERHEAD), mtbf

    interval, mtbf = benchmark(run)
    policy = CheckpointPolicy(interval, OVERHEAD)
    tuned = HarvestScheduler(policy).run(_jobs(SEED + 91), capacity)
    report_writer(
        "ablation_checkpoint_young_daly",
        f"estimated supply MTBF: {mtbf:.1f} steps\n"
        f"Young-Daly interval: {interval} steps\n"
        f"goodput at Young-Daly: {100 * tuned.goodput_fraction():.1f}%",
    )
    # The analytic interval achieves goodput within a few points of the
    # sweep's best.
    best = 0.0
    for candidate in INTERVALS:
        result = HarvestScheduler(
            CheckpointPolicy(candidate, OVERHEAD)
        ).run(_jobs(SEED + 91), capacity)
        best = max(best, result.goodput_fraction())
    assert tuned.goodput_fraction() > best - 0.10
