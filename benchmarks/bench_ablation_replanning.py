"""Ablation: replanning as the environment changes (§3.1).

"As the environment changes, e.g., weather predictions update or
applications complete and resources free up, we need to rerun the
optimization."  A naive re-solve ignores where VMs already sit and may
shuffle everything for marginal predicted gains; the switching-cost
term makes moves pay for themselves.  This bench replans mid-horizon
with refreshed forecasts at different switch weights and measures
(a) how many VMs move and (b) the realized total overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.forecast import NoisyOracleForecaster
from repro.sched import MIPScheduler, problem_from_forecasts
from repro.sim import execute_placement
from repro.traces import synthesize_catalog_traces
from repro.workload import generate_applications

from conftest import SEED

SWITCH_WEIGHTS = (0.0, 1.0, 10.0)


def test_replanning_switch_weight(
    benchmark, catalog, hourly_week_grid, report_writer
):
    trio = catalog.subset(["NO-solar", "UK-wind", "PT-wind"])
    traces = synthesize_catalog_traces(
        trio, hourly_week_grid, seed=SEED + 95
    )
    total_cores = {name: 28000 for name in traces}
    apps = generate_applications(
        hourly_week_grid, 100, seed=SEED + 96,
        mean_vm_count=30, mean_duration_days=3.0,
        arrival_window_fraction=0.2,
    )
    # Initial plan at t=0 with the week-ahead forecast.
    initial_forecaster = NoisyOracleForecaster(seed=SEED + 97)
    initial_problem = problem_from_forecasts(
        hourly_week_grid, traces, total_cores, apps, initial_forecaster
    )
    initial = MIPScheduler(time_limit_s=60.0).schedule(initial_problem)
    # Mid-week the forecasts refresh (different noise realization).
    refreshed_forecaster = NoisyOracleForecaster(seed=SEED + 98)
    refreshed_problem = problem_from_forecasts(
        hourly_week_grid, traces, total_cores, apps,
        refreshed_forecaster,
    )
    actual = {
        name: np.floor(traces[name].values * total_cores[name])
        for name in traces
    }

    def moved_vms(before, after):
        moves = 0
        for app in apps:
            prev = before.assignment.get(app.app_id, {})
            new = after.assignment.get(app.app_id, {})
            for name in set(prev) | set(new):
                delta = new.get(name, 0) - prev.get(name, 0)
                if delta > 0:
                    moves += delta
        return moves

    def run():
        rows = {}
        for weight in SWITCH_WEIGHTS:
            replanned = MIPScheduler(time_limit_s=60.0).schedule(
                refreshed_problem,
                previous_assignment=initial.assignment,
                switch_weight=weight,
            )
            execution = execute_placement(
                refreshed_problem, replanned, actual
            )
            rows[weight] = (
                moved_vms(initial, replanned),
                execution.total_transfer_gb(),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["Switch weight", "VMs moved by replan", "Realized total (GB)"],
        [
            [weight, moved, round(total)]
            for weight, (moved, total) in rows.items()
        ],
        title="Replanning under refreshed forecasts",
    )
    report_writer("ablation_replanning", table)

    moves = [rows[w][0] for w in SWITCH_WEIGHTS]
    # Switching costs monotonically damp the reshuffle.
    assert moves[0] >= moves[1] >= moves[2]
    # And the free-for-all replan moves substantially more than the
    # strongly-damped one.
    assert moves[0] > moves[2]
