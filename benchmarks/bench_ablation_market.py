"""Ablation: the §2.1 market economics of a VB site.

Quantifies the paper's economic arguments: curtailment volume at
rising renewable penetration, negative-price exposure, and the revenue
uplift of consuming generation as compute rather than exporting it.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.multisite import MarketModel, compare_revenue
from repro.traces import synthesize_catalog_traces
from repro.units import grid_days

from conftest import SEED, START


@pytest.fixture(scope="module")
def wind_trace(catalog):
    grid = grid_days(START, 30)
    return synthesize_catalog_traces(
        catalog.subset(["DK-wind"]), grid, seed=SEED + 99
    )["DK-wind"]


def test_market_revenue_uplift(benchmark, wind_trace, report_writer):
    def run():
        rows = {}
        for label, sensitivity in (
            ("low penetration", 30.0),
            ("today", 70.0),
            ("high penetration", 110.0),
        ):
            model = MarketModel(sensitivity_per_mwh=sensitivity)
            comparison = compare_revenue(
                wind_trace, model, seed=SEED
            )
            rows[label] = comparison
        return rows

    rows = benchmark(run)
    table = format_table(
        ["Scenario", "Export rev", "Compute rev", "Curtailed MWh",
         "Neg-price steps"],
        [
            [
                label,
                round(c.export_revenue),
                round(c.compute_revenue),
                round(c.curtailed_mwh),
                f"{100 * c.negative_price_fraction:.0f}%",
            ]
            for label, c in rows.items()
        ],
        title="VB compute vs grid export, 30 days of DK wind"
        " (price sensitivity = renewable penetration)",
    )
    report_writer("ablation_market_revenue", table)

    # Compute revenue is penetration-independent; export revenue falls
    # as penetration rises (the paper's depressed/negative prices).
    assert (
        rows["high penetration"].export_revenue
        < rows["today"].export_revenue
        < rows["low penetration"].export_revenue
    )
    # Negative-price exposure grows with penetration.
    assert (
        rows["high penetration"].negative_price_fraction
        >= rows["today"].negative_price_fraction
    )
    # On-site compute beats exporting in every scenario here.
    for comparison in rows.values():
        assert comparison.compute_revenue > comparison.export_revenue
