"""Ablation: how forecast quality drives the MIP's advantage.

The paper's whole §3.1 premise is that migrations are *predictable*.
This ablation scales the forecast noise (0x = clairvoyant oracle,
1x = paper-calibrated, 3x = badly degraded) and measures the realized
total migration overhead of the full-horizon MIP.  With perfect
forecasts the MIP should do best; as noise grows its plans degrade
toward (but should not catastrophically exceed) the greedy baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.forecast import HorizonNoise, NoisyOracleForecaster
from repro.sched import GreedyScheduler, MIPScheduler, problem_from_forecasts
from repro.sim import execute_placement
from repro.traces import synthesize_catalog_traces
from repro.workload import generate_applications

from conftest import SEED

NOISE_SCALES = (0.0, 1.0, 3.0)


def test_ablation_forecast_quality(
    benchmark, catalog, hourly_week_grid, report_writer
):
    trio = catalog.subset(["NO-solar", "UK-wind", "PT-wind"])
    traces = synthesize_catalog_traces(
        trio, hourly_week_grid, seed=SEED + 20
    )
    total_cores = {name: 28000 for name in traces}
    apps = generate_applications(
        hourly_week_grid, 220, seed=SEED + 21,
        mean_vm_count=40, mean_duration_days=2.5,
    )
    actual = {
        name: np.floor(traces[name].values * total_cores[name])
        for name in traces
    }

    def run():
        totals = {}
        for scale in NOISE_SCALES:
            noise = HorizonNoise(scale=0.069 * scale) if scale else (
                HorizonNoise(scale=0.0)
            )
            forecaster = NoisyOracleForecaster(noise=noise, seed=SEED)
            problem = problem_from_forecasts(
                hourly_week_grid, traces, total_cores, apps, forecaster
            )
            placement = MIPScheduler(time_limit_s=60.0).schedule(problem)
            execution = execute_placement(problem, placement, actual)
            totals[scale] = execution.total_transfer_gb()
        # Greedy reference with paper-calibrated forecasts.
        problem = problem_from_forecasts(
            hourly_week_grid, traces, total_cores, apps,
            NoisyOracleForecaster(seed=SEED),
        )
        greedy = GreedyScheduler().schedule(problem)
        totals["greedy"] = execute_placement(
            problem, greedy, actual
        ).total_transfer_gb()
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"MIP, {scale}x noise", round(totals[scale])]
        for scale in NOISE_SCALES
    ] + [["Greedy (1x noise)", round(totals["greedy"])]]
    table = format_table(
        ["Configuration", "Realized total (GB)"],
        rows,
        title="Ablation: forecast quality vs realized migration overhead",
    )
    report_writer("ablation_forecast_quality", table)

    # Clairvoyant forecasts must not do worse than heavily-degraded
    # ones, and even a 3x-noise MIP should beat no-lookahead greedy.
    assert totals[0.0] <= totals[3.0] * 1.05
    assert totals[3.0] < totals["greedy"]
