"""Shared fixtures and reporting plumbing for the benchmark harness.

Each bench regenerates one of the paper's tables or figures: it builds
the workload, runs the experiment, prints the same rows/series the
paper reports, writes the report under ``benchmarks/results/``, and
asserts the paper's *shape* claims (orderings, approximate factors,
CDF structure) — not absolute numbers, since the substrate is a
synthetic simulator rather than the authors' traces.

Heavy experiments go through the :mod:`repro.experiments` layer: a
declarative :class:`~repro.experiments.Scenario` run by a
:class:`~repro.experiments.Runner`, with trace synthesis, forecasts,
and MIP solves stored in the content-addressed artifact cache (under
``$REPRO_CACHE_DIR``, default ``~/.cache/repro``), so a second bench
run skips the minutes-long solver stages, and each run drops its
``RunManifest`` JSON next to the text reports.
"""

from __future__ import annotations

from datetime import timedelta
from pathlib import Path

import pytest

from repro.experiments import (
    ArtifactCache,
    ComputeSpec,
    PolicySpec,
    Runner,
    Scenario,
    WorkloadSpec,
    cached_catalog_traces,
    resolve_jobs,
)
from repro.experiments.defaults import (
    BENCH_SEED,
    BENCH_START,
    DEFAULT_START,
    TRIO_SITES,
    YEAR_START,
)
from repro.traces import default_european_catalog
from repro.units import TimeGrid, grid_days

RESULTS_DIR = Path(__file__).parent / "results"

#: Start date used across benches; matches the paper's EMHIRES window
#: (Figure 3a shows days in May 2015).
START = BENCH_START

#: Master seed for all benches.
SEED = BENCH_SEED


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop their text reports."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report_writer(results_dir):
    """Write (and echo) a bench's report text."""

    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[written to {path}]")

    return write


@pytest.fixture(scope="session")
def artifact_cache() -> ArtifactCache:
    """The on-disk artifact cache shared by every bench in a session."""
    return ArtifactCache()


@pytest.fixture(scope="session")
def catalog():
    """The full European site catalog."""
    return default_european_catalog()


@pytest.fixture(scope="session")
def quarter_traces(catalog, artifact_cache):
    """Three months of 15-minute traces for every catalog site.

    This is the paper's §2.3/§3 analysis span ("3 month solar and wind
    traces in Europe").
    """
    grid = grid_days(START, 90)
    return cached_catalog_traces(catalog, grid, SEED, artifact_cache)


@pytest.fixture(scope="session")
def year_traces(catalog, artifact_cache):
    """One year of 15-minute traces for the Figure-2b CDF (solar and
    wind at a Belgium-like site, the ELIA coverage area)."""
    grid = grid_days(YEAR_START, 365)
    subset = catalog.subset(["BE-solar", "BE-wind"])
    return cached_catalog_traces(subset, grid, SEED + 1, artifact_cache)


@pytest.fixture(scope="session")
def hourly_week_grid():
    """Seven days at hourly resolution — the Table-1 horizon."""
    return TimeGrid(DEFAULT_START, timedelta(hours=1), 7 * 24)


@pytest.fixture(scope="session")
def table1_scenario(hourly_week_grid) -> Scenario:
    """The §3.1 policy study as a declarative scenario.

    A 3-site multi-VB group (the Figure-3 trio), 7 days at hourly
    resolution, ~200 applications, placements planned on NoisyOracle
    forecasts and executed against the actual traces.  The explicit
    per-stage seeds pin the exact workload the harness has always
    benchmarked.
    """
    return Scenario(
        name="table1",
        sites=TRIO_SITES,
        grid=hourly_week_grid,
        workload=WorkloadSpec(
            count=200, mean_vm_count=40, mean_duration_days=2.5
        ),
        policies=(
            PolicySpec("Greedy", "greedy"),
            PolicySpec(
                "MIP-24h", "rolling_mip", window_steps=24,
                time_limit_s=30.0,
            ),
            PolicySpec("MIP", "mip", time_limit_s=120.0),
            PolicySpec(
                "MIP-peak", "mip", peak_weight=50.0, time_limit_s=120.0
            ),
        ),
        compute=ComputeSpec(cores_per_site=28000),
        seed=SEED,
        trace_seed=SEED + 5,
        workload_seed=SEED + 6,
        forecast_seed=SEED + 7,
    )


@pytest.fixture(scope="session")
def table1_run(table1_scenario, artifact_cache, results_dir):
    """Execute the Table-1 scenario (cached) with its run manifest.

    The four policies solve concurrently on a thread fan-out
    (``REPRO_JOBS`` overrides the worker count); results are identical
    to a serial run because each policy task builds its own forecaster
    from the scenario's forecast seed.
    """
    return Runner(
        table1_scenario,
        cache=artifact_cache,
        manifest_dir=results_dir,
        jobs=resolve_jobs(None, fallback=4),
    ).run()


@pytest.fixture(scope="session")
def table1_results(table1_run):
    """Legacy view of the Table-1 run.

    Returns a dict: policy name -> (placement, execution, problem).
    """
    return {
        policy.name: (
            table1_run.placements[policy.name],
            table1_run.executions[policy.name],
            table1_run.problem,
        )
        for policy in table1_run.scenario.policies
    }
