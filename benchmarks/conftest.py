"""Shared fixtures and reporting plumbing for the benchmark harness.

Each bench regenerates one of the paper's tables or figures: it builds
the workload, runs the experiment, prints the same rows/series the
paper reports, writes the report under ``benchmarks/results/``, and
asserts the paper's *shape* claims (orderings, approximate factors,
CDF structure) — not absolute numbers, since the substrate is a
synthetic simulator rather than the authors' traces.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.traces import default_european_catalog, synthesize_catalog_traces
from repro.units import TimeGrid, grid_days

RESULTS_DIR = Path(__file__).parent / "results"

#: Start date used across benches; matches the paper's EMHIRES window
#: (Figure 3a shows days in May 2015).
START = datetime(2015, 3, 1)

#: Master seed for all benches.
SEED = 2021


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop their text reports."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report_writer(results_dir):
    """Write (and echo) a bench's report text."""

    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[written to {path}]")

    return write


@pytest.fixture(scope="session")
def catalog():
    """The full European site catalog."""
    return default_european_catalog()


@pytest.fixture(scope="session")
def quarter_traces(catalog):
    """Three months of 15-minute traces for every catalog site.

    This is the paper's §2.3/§3 analysis span ("3 month solar and wind
    traces in Europe").
    """
    grid = grid_days(START, 90)
    return synthesize_catalog_traces(catalog, grid, seed=SEED)


@pytest.fixture(scope="session")
def year_traces(catalog):
    """One year of 15-minute traces for the Figure-2b CDF (solar and
    wind at a Belgium-like site, the ELIA coverage area)."""
    grid = grid_days(datetime(2015, 1, 1), 365)
    subset = catalog.subset(["BE-solar", "BE-wind"])
    return synthesize_catalog_traces(subset, grid, seed=SEED + 1)


@pytest.fixture(scope="session")
def hourly_week_grid():
    """Seven days at hourly resolution — the Table-1 horizon."""
    return TimeGrid(datetime(2015, 5, 1), timedelta(hours=1), 7 * 24)


@pytest.fixture(scope="session")
def table1_results(catalog, hourly_week_grid):
    """Run the four §3.1 policies on the paper's 7-day setup.

    Shared by the Table-1 and Figure-7 benches: a 3-site multi-VB
    group (the Figure-3 trio), 7 days at hourly resolution, ~200
    applications, placements planned on NoisyOracle forecasts and
    executed against the actual traces.

    Returns a dict: policy name -> (placement, execution, problem).
    """
    import numpy as np

    from repro.forecast import NoisyOracleForecaster
    from repro.sched import (
        GreedyScheduler,
        MIPScheduler,
        RollingMIPScheduler,
        problem_from_forecasts,
    )
    from repro.sim import execute_placement
    from repro.workload import generate_applications

    trio = catalog.subset(["NO-solar", "UK-wind", "PT-wind"])
    traces = synthesize_catalog_traces(trio, hourly_week_grid, seed=SEED + 5)
    total_cores = {name: 28000 for name in traces}
    apps = generate_applications(
        hourly_week_grid, 200, seed=SEED + 6,
        mean_vm_count=40, mean_duration_days=2.5,
    )
    forecaster = NoisyOracleForecaster(seed=SEED + 7)
    problem = problem_from_forecasts(
        hourly_week_grid, traces, total_cores, apps, forecaster
    )
    actual = {
        name: np.floor(traces[name].values * total_cores[name])
        for name in traces
    }

    def day_ahead_provider(site_name, issue_step, horizon):
        forecast = forecaster.forecast(
            traces[site_name], issue_step, horizon
        )
        return np.floor(forecast.values * total_cores[site_name])

    policies = {
        "Greedy": GreedyScheduler(),
        "MIP-24h": RollingMIPScheduler(
            window_steps=24, capacity_provider=day_ahead_provider,
            time_limit_s=30.0,
        ),
        "MIP": MIPScheduler(time_limit_s=120.0),
        "MIP-peak": MIPScheduler(peak_weight=50.0, time_limit_s=120.0),
    }
    results = {}
    for name, scheduler in policies.items():
        placement = scheduler.schedule(problem)
        execution = execute_placement(problem, placement, actual)
        results[name] = (placement, execution, problem)
    return results
