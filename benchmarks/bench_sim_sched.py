"""Benchmarks of the simulation core and MIP assembly at fleet scale.

Not a paper figure — these gate the §3/§3.1 scaling work: the
event-driven simulation engine against the dense reference loop
(quarter and year horizons, the paper's 700-server cluster), and the
vectorized MIP constraint assembly against the per-coefficient loop
(8, 64, and 200 candidate sites, with the assembly/solve wall-clock
split reported separately).

Every run writes machine-readable ``BENCH_sim_sched.json`` at the repo
root; CI uploads it as an artifact and fails the bench-smoke job if the
event engine is slower than dense on the year-horizon fleet scenario
(both engines are result-identical, so slower would mean the skipping
machinery costs more than it saves).

Two workload shapes on purpose:

* *Continuous* (quarter horizon): Figure-4-style arrivals at nearly
  every step.  There is nothing to skip, so event ≈ dense — reported
  honestly, no speedup gate.
* *Fleet* (year horizon): sparse batch campaigns on each of several
  sites, the year-long hundreds-of-sites study §3 motivates.  Dense
  walks all 35,040 steps per site regardless; event wakes only where
  state can change, which is where the ≥3x year-horizon gate lives.
"""

from __future__ import annotations

import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import Datacenter, DatacenterConfig
from repro.experiments.defaults import BENCH_START, YEAR_START
from repro.sched import MIPScheduler, SchedulingProblem, SiteCapacity
from repro.sched.mip import _Layout, _assemble, _assemble_reference
from repro.traces import synthesize_wind
from repro.units import TimeGrid, grid_days
from repro.workload import (
    Application,
    VMClass,
    VMRequest,
    VMType,
    generate_vm_requests,
    workload_matched_to_power,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON_PATH = REPO_ROOT / "BENCH_sim_sched.json"

_RESULTS: dict[str, dict] = {}

_VM_TYPES = (
    VMType("D2", 2, 8.0),
    VMType("D4", 4, 16.0),
    VMType("D8", 8, 32.0),
)


def _record(name: str, **extra) -> None:
    _RESULTS[name] = extra


def _time_once(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def bench_json_writer():
    """Write ``BENCH_sim_sched.json`` after the module's benches ran."""
    yield
    if not _RESULTS:
        return
    payload = {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpus": os.cpu_count() or 1,
            "python": sys.version.split()[0],
        },
        "benches": dict(sorted(_RESULTS.items())),
    }
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n"
    )
    print(f"\n[sim/sched trajectory written to {BENCH_JSON_PATH}]")


# ----------------------------------------------------------------------
# Simulation core: dense vs event
# ----------------------------------------------------------------------


def _fleet_site(site_seed: int, grid) -> tuple:
    """One fleet site-year: three sparse week-scale batch campaigns."""
    rng = np.random.default_rng(site_seed)
    trace = synthesize_wind(grid, seed=site_seed, name=f"site{site_seed}")
    requests = []
    vm_id = 0
    for campaign in range(3):
        day = int(rng.integers(campaign * 120, campaign * 120 + 60))
        arrival = day * 96
        for _ in range(400):
            lifetime = int(rng.integers(96, 3 * 96))
            vm_type = _VM_TYPES[rng.integers(0, len(_VM_TYPES))]
            vm_class = (
                VMClass.STABLE if rng.random() < 0.5 else VMClass.DEGRADABLE
            )
            requests.append(
                VMRequest(
                    vm_id,
                    arrival + int(rng.integers(0, 48)),
                    lifetime,
                    vm_type,
                    vm_class,
                )
            )
            vm_id += 1
    return trace, requests


def test_sim_quarter_continuous():
    """Quarter horizon, Figure-4-style continuous arrivals.

    Every step has work, so the event engine cannot skip — this bench
    documents that its overhead on dense workloads stays small, and
    checks the engines agree on a real workload inside the bench run.
    """
    grid = grid_days(BENCH_START, 90)
    trace = synthesize_wind(grid, seed=2, name="site")
    config = DatacenterConfig()
    workload = workload_matched_to_power(
        float(trace.values.mean()), config.cluster.total_cores
    )
    requests = generate_vm_requests(grid, workload, seed=3)

    dense, dense_s = _time_once(
        lambda: Datacenter(config, trace).run(requests, engine="dense")
    )
    event, event_s = _time_once(
        lambda: Datacenter(config, trace).run(requests, engine="event")
    )
    assert dense.records == event.records
    assert list(dense.events) == list(event.events)
    _record(
        "sim_quarter_continuous",
        n_steps=grid.n,
        n_requests=len(requests),
        dense_s=dense_s,
        event_s=event_s,
        event_vs_dense=dense_s / event_s,
    )
    # No speedup gate: with arrivals at ~every step there is nothing to
    # skip.  The engines must simply stay in the same ballpark.
    assert event_s <= dense_s * 1.5


def test_sim_year_fleet():
    """Year horizon x 8 sites, sparse batch campaigns (the fleet study).

    The CI gate: the event engine must not be slower than dense here
    (1.0x), and the recorded speedup is expected to be >= 3x on an
    unloaded machine — dense walks 35,040 steps per site while event
    wakes at roughly a sixth of them.
    """
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    sites = [_fleet_site(seed, grid) for seed in range(8)]

    def run(engine: str):
        return [
            Datacenter(config, trace).run(requests, engine=engine)
            for trace, requests in sites
        ]

    dense, dense_s = _time_once(lambda: run("dense"))
    event, event_s = _time_once(lambda: run("event"))
    for dense_result, event_result in zip(dense, event):
        assert dense_result.records == event_result.records
    speedup = dense_s / event_s
    _record(
        "sim_year_fleet_8sites",
        n_steps=grid.n,
        n_sites=len(sites),
        n_requests_per_site=len(sites[0][1]),
        dense_s=dense_s,
        event_s=event_s,
        event_vs_dense=speedup,
    )
    # Result-identical engines: event slower than dense would mean the
    # skipping machinery costs more than it saves.  (>=3x is the
    # expected headroom; 1.0x is the hard CI gate so a loaded runner
    # doesn't flake the build.)
    assert speedup >= 1.0


def test_sim_year_single_site_step_kernel():
    """Single site-year, all three engines: dense vs event vs soa.

    The step-kernel microbench: ``engine="soa"`` runs the same event
    loop as ``engine="event"`` but advances structure-of-arrays state
    (:class:`repro.cluster.kernel.StepKernel`) instead of the VM /
    server object graph, so the difference isolates the kernel's
    per-wake win.  Results are asserted identical; the gate only pins
    the kernel against the dense reference walk so a loaded runner
    cannot flake on the event/soa ratio.
    """
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    trace, requests = _fleet_site(21, grid)

    def run(engine: str):
        return Datacenter(config, trace).run(requests, engine=engine)

    dense, dense_s = _time_once(lambda: run("dense"))
    event, event_s = _time_once(lambda: run("event"))
    soa, soa_s = _time_once(lambda: run("soa"))
    assert dense.records == event.records
    assert dense.records == soa.records
    assert list(dense.events) == list(soa.events)
    _record(
        "sim_year_single_site_step_kernel",
        n_steps=grid.n,
        n_requests=len(requests),
        dense_s=dense_s,
        event_s=event_s,
        soa_s=soa_s,
        soa_vs_event=event_s / soa_s,
        soa_vs_dense=dense_s / soa_s,
    )
    assert soa_s <= dense_s


def test_sim_year_fleet_tracing_overhead():
    """Year-fleet event engine with tracing off vs on.

    The no-op observability path must stay free: with no sinks the
    instrumented engine may not regress more than 5% against itself
    with a live JSONL sink (plus a small absolute floor so a loaded
    runner doesn't flake on sub-second noise).  Results must be
    identical either way, and the emitted trace is uploaded by CI.
    """
    from repro import obs

    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    sites = [_fleet_site(seed, grid) for seed in range(4)]

    def run():
        return [
            Datacenter(config, trace).run(requests, engine="event")
            for trace, requests in sites
        ]

    trace_path = REPO_ROOT / "BENCH_trace.jsonl"
    trace_path.unlink(missing_ok=True)
    assert not obs.enabled()
    untraced, untraced_s = _time_once(run)
    sink = obs.JsonlSink(trace_path)
    with obs.use(sink):
        traced, traced_s = _time_once(run)
    sink.close()
    for a, b in zip(untraced, traced):
        assert a.records == b.records
    assert trace_path.exists() and trace_path.stat().st_size > 0
    spans = [
        r
        for r in obs.load_trace(trace_path)
        if r["type"] == "span" and r["name"] == "datacenter.run"
    ]
    assert len(spans) == len(sites)
    _record(
        "sim_year_fleet_tracing",
        n_sites=len(sites),
        untraced_s=untraced_s,
        traced_s=traced_s,
        overhead=traced_s / untraced_s - 1.0,
    )
    # The gate protects the *untraced* path: instrumentation must not
    # have slowed the engine.  Tracing emits one span + a handful of
    # aggregate counters per site-year, so even the traced run should
    # sit within noise of untraced.
    assert traced_s <= untraced_s * 1.05 + 0.5


# ----------------------------------------------------------------------
# MIP: assembly vs solve, loop vs vectorized
# ----------------------------------------------------------------------


def _mip_problem(n_sites: int, n_apps: int, n_steps: int = 96):
    rng = np.random.default_rng(n_sites)
    grid = TimeGrid(BENCH_START, grid_days(BENCH_START, 1).step, n_steps)
    sites = tuple(
        SiteCapacity(
            f"s{i}", 28_000, np.floor(rng.uniform(0.2, 1.0, n_steps) * 28_000)
        )
        for i in range(n_sites)
    )
    apps = []
    for a in range(n_apps):
        arrival = int(rng.integers(0, n_steps - 2))
        duration = int(rng.integers(1, n_steps - arrival))
        cores = int(rng.choice([2, 4, 8]))
        apps.append(
            Application(
                a, arrival, duration, int(rng.integers(1, 30)),
                VMType(f"T{cores}", cores, cores * 4.0),
                float(rng.choice([0.0, 0.3, 1.0])),
            )
        )
    return SchedulingProblem(
        grid, sites, tuple(apps), bytes_per_core=4 * 2**30
    )


@pytest.mark.parametrize("n_sites", [8, 64, 200])
def test_mip_assembly_scaling(n_sites):
    """Vectorized vs per-coefficient constraint assembly.

    The matrices must be structurally identical (same canonical CSR),
    and the vectorized path must be >= 5x faster at 200 sites — the
    scale where assembly used to dwarf the HiGHS solve.
    """
    problem = _mip_problem(n_sites, n_apps=60)
    layout = _Layout(
        len(problem.apps), len(problem.sites), problem.grid.n, peak=False
    )
    (vec_matrix, vec_lb, vec_ub), vectorized_s = _time_once(
        lambda: _assemble(problem, layout, None, None, None)
    )
    (ref_matrix, ref_lb, ref_ub), reference_s = _time_once(
        lambda: _assemble_reference(problem, layout, None, None, None)
    )
    assert (vec_matrix - ref_matrix).nnz == 0
    assert np.array_equal(vec_lb, ref_lb)
    assert np.array_equal(vec_ub, ref_ub)
    speedup = reference_s / vectorized_s
    _record(
        f"mip_assembly_{n_sites}sites",
        n_rows=int(vec_matrix.shape[0]),
        n_cols=int(vec_matrix.shape[1]),
        nnz=int(vec_matrix.nnz),
        vectorized_s=vectorized_s,
        reference_s=reference_s,
        speedup_vs_loop=speedup,
    )
    if n_sites == 200:
        assert speedup >= 5.0


@pytest.mark.parametrize("n_sites", [8, 64, 200])
def test_mip_assembly_solve_split(n_sites):
    """Full solves with the assembly/solve wall-clock split recorded.

    Uses the relaxed LP (``integer_vms=False``) so the 200-site solve
    stays CI-sized; the split is what the bench tracks, not branching.
    """
    problem = _mip_problem(n_sites, n_apps=40)
    scheduler = MIPScheduler(integer_vms=False, time_limit_s=120.0)
    placement, total_s = _time_once(lambda: scheduler.schedule(problem))
    placement.validate_complete(problem)
    timings = scheduler.last_timings
    assert timings is not None
    _record(
        f"mip_schedule_{n_sites}sites",
        assembly_s=timings.assembly_s,
        solve_s=timings.solve_s,
        total_s=total_s,
        n_rows=timings.n_rows,
        n_cols=timings.n_cols,
        nnz=timings.nnz,
    )
    assert timings.assembly_s + timings.solve_s <= total_s


def _planning_problem(n_sites: int, n_apps: int, n_steps: int = 96):
    """A tight planning instance: site capacity dips force real
    displacement decisions, so the solve has actual work per window.

    Arrivals are day-aligned batch campaigns (each app runs inside
    one 24-step day, like the daily re-solve cadence of the paper's
    MIP-24h), so a ``window:24`` decomposition is time-separable and
    the window solves can run in parallel; the gap then measures seam
    accounting and LP-rounding, not blind placement (EXPERIMENTS.md
    discusses lookahead sizing for workloads that do span days).
    """
    rng = np.random.default_rng(1000 + n_sites)
    grid = TimeGrid(BENCH_START, grid_days(BENCH_START, 1).step, n_steps)
    # Fleet-wide renewable lulls (one per ~2 days): each dips ~70% of
    # the sites at once — a regional weather event.  During a lull the
    # fleet's aggregate capacity sits near the aggregate stable load,
    # so displacement is genuinely scarce and the solver objective is
    # meaningfully nonzero.
    lulls = []
    for _ in range(max(1, n_steps // 96)):
        start = int(rng.integers(0, n_steps - 6))
        lulls.append((start, rng.random(n_sites) < 0.6))
    sites = []
    for i in range(n_sites):
        caps = np.full(n_steps, 100.0)
        for start, hit in lulls:
            if hit[i]:
                caps[start:start + 6] = float(rng.uniform(10.0, 40.0))
        sites.append(SiteCapacity(f"s{i}", 100, caps))
    apps = []
    n_days = n_steps // 24
    for a in range(n_apps):
        day = int(rng.integers(0, n_days))
        offset = int(rng.integers(0, 12))
        arrival = day * 24 + offset
        duration = int(rng.integers(4, min(12, 24 - offset) + 1))
        cores = int(rng.choice([2, 4, 8]))
        apps.append(
            Application(
                a, arrival, duration, int(rng.integers(3, 20)),
                VMType(f"T{cores}", cores, cores * 4.0),
                float(rng.choice([0.5, 1.0])),
            )
        )
    return SchedulingProblem(
        grid, sites, tuple(apps), bytes_per_core=4 * 2**30
    )


@pytest.mark.parametrize(
    "n_sites,n_days", [(200, 4), (500, 6)]
)
def test_mip_schedule_decomposed(n_sites, n_days):
    """Monolithic vs decomposed planning at 200/500 sites (ISSUE 8).

    The CI gate lives at 500 sites: the windowed decomposition must
    finish in <= 0.5x the monolithic wall-clock with the solved
    objective within 1% of the monolithic optimum.  Uses the relaxed
    LP (``integer_vms=False``) like the solve-split bench so the
    monolithic baseline stays CI-sized; the quality gate compares the
    solver objectives (the placement-level numbers are also recorded,
    but VM-integerization rounds both modes' placements identically,
    so the solver objective is the decomposition-attributable signal).
    The day-aligned workload is time-separable at ``window:24``, so
    the windowed objective is exact up to solver tolerance — and the
    monolithic LP's solve cost grows superlinearly with the horizon
    while the windowed cost grows linearly, which is where the
    wall-clock gate's headroom comes from.
    """
    from repro.sched import placement_objective

    problem = _planning_problem(
        n_sites, n_apps=n_days * n_sites, n_steps=24 * n_days
    )
    mono = MIPScheduler(integer_vms=False, time_limit_s=600.0)
    p_mono, mono_s = _time_once(lambda: mono.schedule(problem))
    p_mono.validate_complete(problem)

    deco = MIPScheduler(
        integer_vms=False, time_limit_s=600.0, decompose="window:24",
    )
    p_deco, deco_s = _time_once(lambda: deco.schedule(problem))
    p_deco.validate_complete(problem)

    timings = deco.last_timings
    solver_mono = mono.last_timings.objective
    solver_deco = sum(w.objective for w in timings.windows)
    gap = (solver_deco - solver_mono) / max(solver_mono, 1.0)
    _record(
        f"mip_schedule_{n_sites}sites_decomposed",
        n_apps=len(problem.apps),
        n_steps=problem.grid.n,
        monolithic_s=mono_s,
        decomposed_s=deco_s,
        speedup=mono_s / deco_s,
        solver_objective_monolithic_gb=solver_mono,
        solver_objective_decomposed_gb=solver_deco,
        objective_gap=gap,
        placement_objective_monolithic_gb=placement_objective(
            problem, p_mono
        ),
        placement_objective_decomposed_gb=placement_objective(
            problem, p_deco
        ),
        n_windows=len(timings.windows),
        fell_back=timings.fell_back,
    )
    assert timings.fell_back is False
    assert gap <= 0.01
    if n_sites == 500:
        assert deco_s <= 0.5 * mono_s
