"""Benchmarks of the columnar fleet engine at study scale.

Not a paper figure — these gate the batched cross-site refactor: one
:class:`~repro.sim.fleet.FleetEngine` program advancing every site
against N independent ``Datacenter.run`` calls (the "looped" baseline
it replaced), on the year-long hundreds-of-sites study §3 motivates.

Every run writes machine-readable ``BENCH_fleet.json`` at the repo
root; CI uploads it as an artifact and fails the bench-smoke job if
the fleet engine is slower than the looped event engine on the
64-site year (both are result-identical, so slower would mean the
batching machinery costs more than it saves).

Two baselines on purpose, reported side by side:

* ``speedup_vs_looped`` — against per-site *event-driven* runs, the
  strongest baseline (it already skips idle steps).  The fleet's win
  here comes from shared site-major column matrices, SoA step kernels,
  one wake heap, and vectorized cross-site budget scans; expect
  1.4–2x depending on wake density.  This is the hard CI gate
  (>= 1.4x).
* ``speedup_vs_dense_looped`` — against per-site *dense* runs that
  walk all 35,040 steps, the pre-event-engine reference.  This is the
  headline >= 3x acceptance number for the refactor.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import Datacenter, DatacenterConfig
from repro.experiments.defaults import YEAR_START
from repro.sim import FleetEngine, FleetSite
from repro.traces import synthesize_wind
from repro.units import grid_days
from repro.workload import VMClass, VMRequest, VMType

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON_PATH = REPO_ROOT / "BENCH_fleet.json"

_RESULTS: dict[str, dict] = {}

_VM_TYPES = (
    VMType("D2", 2, 8.0),
    VMType("D4", 4, 16.0),
    VMType("D8", 8, 32.0),
)


def _record(name: str, **extra) -> None:
    _RESULTS[name] = extra


def _time_once(fn):
    gc.collect()
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def bench_json_writer():
    """Write ``BENCH_fleet.json`` after the module's benches ran."""
    yield
    if not _RESULTS:
        return
    cpus = os.cpu_count() or 1
    machine = {
        "cpus": cpus,
        "python": sys.version.split()[0],
    }
    if cpus <= 2:
        # Recorded timings from constrained runners are directional
        # only — treat the intra-run ratios as the signal.
        machine["caveat"] = (
            "recorded on a single-core (or near-single-core) runner; "
            "absolute seconds are pessimistic, compare ratios only"
        )
    payload = {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine,
        "benches": dict(sorted(_RESULTS.items())),
    }
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n"
    )
    print(f"\n[fleet trajectory written to {BENCH_JSON_PATH}]")


def _fleet_site(site_seed: int, grid, config) -> FleetSite:
    """One fleet site-year: three sparse week-scale batch campaigns
    (the same workload shape the sim-core year bench uses)."""
    rng = np.random.default_rng(site_seed)
    trace = synthesize_wind(grid, seed=site_seed, name=f"site{site_seed}")
    requests = []
    vm_id = 0
    for campaign in range(3):
        day = int(rng.integers(campaign * 120, campaign * 120 + 60))
        arrival = day * 96
        for _ in range(400):
            lifetime = int(rng.integers(96, 3 * 96))
            vm_type = _VM_TYPES[rng.integers(0, len(_VM_TYPES))]
            vm_class = (
                VMClass.STABLE if rng.random() < 0.5 else VMClass.DEGRADABLE
            )
            requests.append(
                VMRequest(
                    vm_id,
                    arrival + int(rng.integers(0, 48)),
                    lifetime,
                    vm_type,
                    vm_class,
                )
            )
            vm_id += 1
    return FleetSite(
        name=f"site{site_seed}",
        config=config,
        trace=trace,
        requests=list(requests),
    )


def test_fleet_vs_looped_64site_year():
    """64 sites x 1 year: fleet vs per-site event and dense loops.

    The CI gate lives here: the fleet engine (SoA kernels + shared
    columnar state) must beat the looped event engine by >= 1.4x, and
    the dense-loop ratio is the refactor's >= 3x acceptance headroom.
    """
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    sites = [_fleet_site(seed, grid, config) for seed in range(64)]

    def looped(engine: str):
        return {
            site.name: Datacenter(site.config, site.trace).run(
                site.requests, engine=engine
            )
            for site in sites
        }

    fleet, fleet_s = _time_once(lambda: FleetEngine(sites).run())
    event, event_s = _time_once(lambda: looped("event"))
    dense, dense_s = _time_once(lambda: looped("dense"))

    # Result-identical by construction — verify before trusting times.
    for site in sites:
        assert fleet[site.name].summary_dict() == event[site.name].summary_dict()
        assert fleet[site.name].summary_dict() == dense[site.name].summary_dict()

    speedup_vs_looped = event_s / fleet_s
    speedup_vs_dense = dense_s / fleet_s
    _record(
        "fleet_64site_year",
        n_sites=len(sites),
        n_steps=grid.n,
        n_requests_per_site=len(sites[0].requests),
        fleet_s=fleet_s,
        looped_event_s=event_s,
        dense_looped_s=dense_s,
        speedup_vs_looped=speedup_vs_looped,
        speedup_vs_dense_looped=speedup_vs_dense,
    )
    # Hard gate: the SoA-kernel fleet must clearly beat the looped
    # event engine — below 1.4x the batching + kernel machinery is
    # not paying for itself.
    assert speedup_vs_looped >= 1.4
    # Acceptance headroom vs the dense per-site reference loop.
    assert speedup_vs_dense >= 3.0


def test_fleet_500site_year():
    """The 500-site x 1-year study in one engine call (EXPERIMENTS.md
    walkthrough).  Records absolute wall time; no looped baseline —
    the 64-site bench carries the comparison."""
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    sites = [_fleet_site(seed, grid, config) for seed in range(500)]

    fleet, fleet_s = _time_once(lambda: FleetEngine(sites).run())
    assert len(fleet) == 500
    completions = sum(
        int(result.columns.n_completed.sum()) for result in fleet.values()
    )
    assert completions > 0
    _record(
        "fleet_500site_year",
        n_sites=len(sites),
        n_steps=grid.n,
        n_requests_per_site=len(sites[0].requests),
        total_completions=completions,
        fleet_s=fleet_s,
        site_years_per_second=len(sites) / fleet_s,
    )
