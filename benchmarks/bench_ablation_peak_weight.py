"""Ablation: the O2 peak-objective weight in MIP-peak.

Sweeping the weight from 0 (pure O1) upward should trade a little
total overhead for a much lower peak — the paper's MIP vs MIP-peak
contrast, as a dial rather than two points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.forecast import NoisyOracleForecaster
from repro.sched import MIPScheduler, problem_from_forecasts
from repro.sim import execute_placement, summarize_transfers
from repro.traces import synthesize_catalog_traces
from repro.workload import generate_applications

from conftest import SEED

WEIGHTS = (0.0, 10.0, 100.0)


def test_ablation_peak_weight(
    benchmark, catalog, hourly_week_grid, report_writer
):
    trio = catalog.subset(["NO-solar", "UK-wind", "PT-wind"])
    traces = synthesize_catalog_traces(
        trio, hourly_week_grid, seed=SEED + 50
    )
    total_cores = {name: 28000 for name in traces}
    apps = generate_applications(
        hourly_week_grid, 120, seed=SEED + 51,
        mean_vm_count=40, mean_duration_days=2.5,
    )
    forecaster = NoisyOracleForecaster(seed=SEED + 52)
    problem = problem_from_forecasts(
        hourly_week_grid, traces, total_cores, apps, forecaster
    )
    actual = {
        name: np.floor(traces[name].values * total_cores[name])
        for name in traces
    }

    def run():
        summaries = {}
        for weight in WEIGHTS:
            scheduler = MIPScheduler(
                peak_weight=weight, time_limit_s=60.0
            )
            placement = scheduler.schedule(problem)
            execution = execute_placement(problem, placement, actual)
            summaries[weight] = summarize_transfers(
                f"w={weight}", execution.total_transfer_series()
            )
        return summaries

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            weight,
            round(s.total_gb),
            round(s.peak_gb),
            round(s.std_gb),
        ]
        for weight, s in summaries.items()
    ]
    table = format_table(
        ["Peak weight", "Total (GB)", "Peak (GB)", "Std (GB)"],
        rows,
        title="Ablation: O2 weight trades total for peak",
    )
    report_writer("ablation_peak_weight", table)

    # Heavier peak weight must not raise the realized peak.
    peaks = [summaries[w].peak_gb for w in WEIGHTS]
    assert peaks[-1] <= peaks[0] + 1e-6
    # The total-overhead price of peak flattening stays modest (the
    # paper reports ~1% between MIP and MIP-peak).
    totals = [summaries[w].total_gb for w in WEIGHTS]
    assert totals[-1] <= 2.0 * totals[0]
