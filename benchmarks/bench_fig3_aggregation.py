"""Figure 3: masking variability by aggregating multiple VB sites (§2.3).

Fig 3a — the NO-solar + UK-wind + PT-wind stack on a complementary
3-day window, with cov improvements from each addition and the
grid-purchase gap fill; Fig 3b — the stable/variable energy break-down
for all seven combinations; plus the §2.3 pairwise study (>52% of
2-site combinations improving cov by >50%).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.multisite import (
    GridPurchase,
    combination_report,
    cov_improvement,
    stabilize_with_purchase,
    stable_energy_split,
)
from repro.traces.base import aggregate_traces

TRIO = ("NO-solar", "UK-wind", "PT-wind")


def _best_window(traces, days=3.0):
    """Search 3-day windows for the most complementary one, as the
    paper did ("we searched for complementary groups ... over 3 day
    intervals")."""
    n_days = len(traces[TRIO[0]]) // traces[TRIO[0]].grid.steps_per_day()
    best = None
    for start in range(0, int(n_days - days)):
        window = {
            name: traces[name].slice_days(start, days) for name in TRIO
        }
        report = stable_energy_split(window, TRIO, window_days=days)
        if best is None or report.stable_fraction > best[1]:
            best = (start, report.stable_fraction)
    start = best[0]
    return {name: traces[name].slice_days(start, days) for name in TRIO}, start


@pytest.fixture(scope="module")
def window_traces(quarter_traces):
    return _best_window(quarter_traces)


def test_fig3a_complementary_stack(
    benchmark, window_traces, report_writer
):
    """Fig 3a: complementary generation across the trio + cov gains."""
    window, start_day = window_traces

    def run():
        return {
            "NO": cov_improvement(window, ["NO-solar"], "UK-wind"),
            "NO+UK": cov_improvement(
                window, ["NO-solar", "UK-wind"], "PT-wind"
            ),
        }

    gains = benchmark(run)
    stack = aggregate_traces([window[name] for name in TRIO], "trio")
    lines = [
        "Figure 3a: complementary 3-day window"
        f" (starting day {start_day} of the quarter)",
        f"adding UK-wind to NO-solar improves cov by"
        f" {gains['NO']:.1f}x (paper: 3.7x)",
        f"adding PT-wind to NO-solar+UK-wind improves cov by"
        f" {gains['NO+UK']:.1f}x (paper: 2.3x)",
        f"trio aggregate: mean {stack.power_mw().mean():,.0f} MW,"
        f" min {stack.power_mw().min():,.0f} MW,"
        f" cov {stack.cov():.2f}",
    ]
    report_writer("fig3a_complementary_stack", "\n".join(lines))

    # Shape: each addition reduces cov by a clear factor (paper: 3.7x
    # then 2.3x; synthetic traces land lower but well above 1).
    assert gains["NO"] > 1.5
    assert gains["NO+UK"] > 1.2


def test_fig3b_stable_energy_breakdown(
    benchmark, window_traces, report_writer
):
    """Fig 3b: stable vs variable energy for all 7 combinations."""
    window, _ = window_traces

    def run():
        return combination_report(window, TRIO, window_days=3.0)

    reports = benchmark(run)
    rows = [
        [
            "+".join(r.names),
            round(r.total_energy_mwh),
            round(r.stable_energy_mwh),
            round(r.variable_energy_mwh),
            f"{100 * (1 - r.stable_fraction):.0f}%",
        ]
        for r in reports
    ]
    table = format_table(
        ["Combination", "Total MWh", "Stable MWh", "Variable MWh",
         "Variable %"],
        rows,
        title="Figure 3b: stable & variable energy by combination",
    )
    report_writer("fig3b_stable_energy", table)

    by_names = {r.names: r for r in reports}
    trio = by_names[TRIO]
    singles = [by_names[(name,)] for name in TRIO]
    # Paper: solar alone is ~100% variable (nights zero the floor).
    assert by_names[("NO-solar",)].stable_fraction < 0.02
    # Paper: the trio's stable share beats every single site's and the
    # NO+UK pair's (67% vs 38% in the paper).
    assert trio.stable_fraction > max(s.stable_fraction for s in singles)
    assert trio.stable_fraction > by_names[
        ("NO-solar", "UK-wind")
    ].stable_fraction
    # Aggregation made a large part of the energy stable.
    assert trio.stable_fraction > 0.25


def test_grid_purchase(benchmark, window_traces, report_writer):
    """§2.3: a small firm-energy purchase is highly leveraged.

    Paper: buying 4,000 MWh fills the trio's worst gaps, stabilizing a
    further 8,000 MWh of variable energy — 12,000 MWh of new stable
    energy, a 3x leverage.
    """
    window, _ = window_traces
    stack = aggregate_traces([window[name] for name in TRIO], "trio")
    purchase = GridPurchase(budget_mwh=4000.0, window_days=3.0)

    outcome = benchmark(
        lambda: stabilize_with_purchase(stack, purchase)
    )
    lines = [
        "Grid purchase gap-fill on the trio window",
        f"purchased: {outcome.purchased_mwh:,.0f} MWh"
        " (paper: 4,000)",
        f"stabilized variable energy: "
        f"{outcome.stabilized_variable_mwh:,.0f} MWh (paper: 8,000)",
        f"new stable energy: {outcome.new_stable_mwh:,.0f} MWh"
        " (paper: 12,000)",
        f"leverage: {outcome.leverage:.1f}x (paper: 3x)",
    ]
    report_writer("fig3_grid_purchase", "\n".join(lines))

    assert outcome.purchased_mwh <= 4000.0 + 1e-6
    # Leverage above 1: the purchase converts more than itself.
    assert outcome.leverage > 1.5
    assert outcome.new_stable_mwh == pytest.approx(
        outcome.purchased_mwh + outcome.stabilized_variable_mwh
    )


def test_pairwise_cov(benchmark, quarter_traces, report_writer):
    """§2.3: >52% of 2-site combinations improve cov by >50%.

    Computed the paper's way: per 3-day interval, compare the pair's
    aggregate cov against its less-steady member's (Fig 3a's framing —
    the improvement UK-wind brings is measured against NO-solar); a
    pair counts when its median interval improves cov by at least 50%
    (factor >= 2).
    """
    names = sorted(quarter_traces)
    days = 3

    def run():
        winners = 0
        total = 0
        per_day = quarter_traces[names[0]].grid.steps_per_day()
        n_windows = len(quarter_traces[names[0]]) // (per_day * days)
        for a, b in combinations(names, 2):
            factors = []
            for w in range(n_windows):
                ta = quarter_traces[a].slice_days(w * days, days)
                tb = quarter_traces[b].slice_days(w * days, days)
                cov_a, cov_b = ta.cov(), tb.cov()
                combined = aggregate_traces([ta, tb]).cov()
                if combined <= 0:
                    factors.append(np.inf)
                else:
                    factors.append(max(cov_a, cov_b) / combined)
            total += 1
            if np.median(factors) >= 2.0:
                winners += 1
        return winners, total

    winners, total = benchmark.pedantic(run, rounds=1, iterations=1)
    fraction = winners / total
    report_writer(
        "fig3_pairwise_cov",
        f"2-site combinations with median 3-day cov improvement >= 2x:"
        f" {winners}/{total} = {100 * fraction:.0f}%"
        " (paper: >52% improve cov by >50%)",
    )
    # Shape: a large share of pairs benefit substantially.
    assert fraction > 0.30
