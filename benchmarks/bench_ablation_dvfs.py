"""Ablation: DVFS as a shallow-dip absorber (§4's other power knob).

With the cubic power-frequency law, slowing every core slightly frees
substantial power: a 20% generation dip costs ~7% throughput instead of
displacing 20% of the load.  This bench measures how much of a wind
site's displacement DVFS absorbs across load levels and frequency
floors.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.cluster.dvfs import FrequencyScaling, dvfs_absorption_summary
from repro.traces import synthesize_catalog_traces
from repro.units import grid_days

from conftest import SEED, START


@pytest.fixture(scope="module")
def wind_trace(catalog):
    grid = grid_days(START, 30)
    return synthesize_catalog_traces(
        catalog.subset(["DK-wind"]), grid, seed=SEED + 80
    )["DK-wind"]


def test_dvfs_absorption_by_load(benchmark, wind_trace, report_writer):
    def run():
        results = {}
        for load in (0.2, 0.4, 0.6):
            results[load] = dvfs_absorption_summary(wind_trace, load)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            f"{int(load * 100)}%",
            round(summary["displaced_core_steps_without"], 1),
            round(summary["displaced_core_steps_with"], 1),
            f"{100 * summary['absorbed_fraction']:.0f}%",
            f"{100 * summary['mean_slowdown_while_absorbing']:.1f}%",
        ]
        for load, summary in results.items()
    ]
    table = format_table(
        ["Load", "Displaced (no DVFS)", "Displaced (DVFS)",
         "Absorbed", "Mean slowdown"],
        rows,
        title="DVFS absorption of displacement (30-day wind site)",
    )
    report_writer("ablation_dvfs_load", table)

    for load, summary in results.items():
        assert summary["displaced_core_steps_with"] <= (
            summary["displaced_core_steps_without"]
        )
        assert summary["absorbed_fraction"] > 0.1
        # Slowdown bounded by the frequency floor.
        assert summary["mean_slowdown_while_absorbing"] < 0.7


def test_dvfs_frequency_floor(benchmark, wind_trace, report_writer):
    def run():
        results = {}
        for floor in (0.8, 0.6, 0.4):
            scaling = FrequencyScaling(min_frequency=floor)
            results[floor] = dvfs_absorption_summary(
                wind_trace, 0.4, scaling
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            floor,
            f"{100 * summary['absorbed_fraction']:.0f}%",
            f"{100 * summary['mean_slowdown_while_absorbing']:.1f}%",
        ]
        for floor, summary in results.items()
    ]
    table = format_table(
        ["Frequency floor", "Absorbed", "Mean slowdown"],
        rows,
        title="DVFS absorption vs frequency floor (40% load)",
    )
    report_writer("ablation_dvfs_floor", table)

    # Deeper floors absorb (weakly) more displacement, at more slowdown.
    absorbed = [results[f]["absorbed_fraction"] for f in (0.8, 0.6, 0.4)]
    assert absorbed[0] <= absorbed[1] + 1e-9 <= absorbed[2] + 2e-9
