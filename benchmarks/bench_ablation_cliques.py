"""Ablation: clique size k and the latency threshold (§3.1 step 1).

The paper's trade-off: larger multi-VB groups flatten variability
further (lower aggregate cov) but admit higher intra-group latency and
more migration surface.  Sweeping k = 2..5 should show the best
candidate's cov falling monotonically while its worst-pair latency
grows; tightening the latency threshold should shrink the candidate
pool.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.multisite import SiteGraph

from conftest import SEED


def test_ablation_clique_size(
    benchmark, catalog, quarter_traces, report_writer
):
    graph = SiteGraph(catalog, quarter_traces, latency_threshold_ms=50.0)

    def run():
        best = {}
        for k in range(2, 6):
            candidates = graph.candidates(k, limit=1)
            if candidates:
                best[k] = candidates[0]
        return best

    best = benchmark(run)
    rows = [
        [
            k,
            "+".join(candidate.names),
            f"{candidate.cov:.3f}",
            f"{candidate.max_latency_ms:.1f} ms",
        ]
        for k, candidate in best.items()
    ]
    table = format_table(
        ["k", "Best group", "Aggregate cov", "Worst-pair RTT"],
        rows,
        title="Ablation: clique size vs variability and latency",
    )
    report_writer("ablation_clique_size", table)

    ks = sorted(best)
    assert len(ks) >= 3, "graph too sparse for the sweep"
    covs = [best[k].cov for k in ks]
    # Larger groups are (weakly) steadier.
    assert all(b <= a + 1e-9 for a, b in zip(covs, covs[1:]))
    # All groups honour the latency threshold.
    assert all(best[k].max_latency_ms <= 50.0 for k in ks)


def test_ablation_latency_threshold(
    benchmark, catalog, quarter_traces, report_writer
):
    def run():
        counts = {}
        for threshold in (15.0, 30.0, 50.0):
            graph = SiteGraph(
                catalog, quarter_traces, latency_threshold_ms=threshold
            )
            counts[threshold] = {
                "edges": graph.graph.number_of_edges(),
                "k3": len(graph.k_cliques(3)),
            }
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{int(t)} ms", c["edges"], c["k3"]]
        for t, c in counts.items()
    ]
    table = format_table(
        ["Latency threshold", "Edges", "3-cliques"],
        rows,
        title="Ablation: latency threshold vs candidate pool size",
    )
    report_writer("ablation_latency_threshold", table)

    assert counts[15.0]["edges"] < counts[50.0]["edges"]
    assert counts[15.0]["k3"] <= counts[50.0]["k3"]
