"""Figure 4: network overhead of migration in a multi-VB setting (§3).

The paper's setup: a site of ~700 servers (40 cores, 512 GB each), an
Azure-like VM arrival trace, power scaled so the cluster is fully
powered at the farm's max output, admission control at 70% utilization,
unallocated cores powered down before any migration, round-robin VM
eviction.

Fig 4a — one week of in/out transfer volumes against power, with >80%
of power changes causing no migration; Fig 4b — the 3-month CDF of
non-zero transfers with heavy tails (p99/p50 of 18-30x in, 12.5-16x
out) and in-migrations spikier-but-smaller than out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    format_cdf_points,
    format_series_sample,
    percentile_ratio,
)
from repro.experiments import Runner, Scenario, WorkloadSpec
from repro.units import grid_days

from conftest import SEED, START


@pytest.fixture(scope="module")
def fig4_run(artifact_cache, results_dir):
    """The §3 single-site study over 3 months of wind and solar."""
    scenario = Scenario(
        name="fig4",
        sites=("BE-wind", "BE-solar"),
        grid=grid_days(START, 90),
        workload=WorkloadSpec(kind="vm_requests"),
        seed=SEED,
        workload_seed=SEED + 10,
    )
    return Runner(
        scenario, cache=artifact_cache, manifest_dir=results_dir
    ).run()


@pytest.fixture(scope="module")
def wind_run(fig4_run):
    return fig4_run.simulations["BE-wind"]


@pytest.fixture(scope="module")
def solar_run(fig4_run):
    return fig4_run.simulations["BE-solar"]


def test_fig4a_weekly_series(benchmark, wind_run, report_writer):
    """Fig 4a: 1-week transfer time series + silent-change fraction."""

    def run():
        return wind_run.power_changes_without_migration_fraction()

    silent = benchmark(run)
    week = slice(0, 7 * 96)
    out_gb = wind_run.out_gb_series()[week]
    in_gb = wind_run.in_gb_series()[week]
    power = wind_run.power_series()[week]
    lines = [
        "Figure 4a: one week of migration traffic (wind-powered site)",
        f"power changes causing no migration: {100 * silent:.0f}%"
        " (paper: >80%)",
        f"week totals: out {out_gb.sum():,.0f} GB,"
        f" in {in_gb.sum():,.0f} GB",
        f"peak single-step transfer: {max(out_gb.max(), in_gb.max()):,.0f}"
        " GB (paper: spikes of multiple TBs)",
        "normalized power (sample):",
        format_series_sample(power, 14),
        "out-migration GB (sample):",
        format_series_sample(out_gb, 14, "GB"),
        "in-migration GB (sample):",
        format_series_sample(in_gb, 14, "GB"),
    ]
    report_writer("fig4a_weekly_migration", "\n".join(lines))

    # Paper: >80% of power changes don't incur migrations.  Synthetic
    # traces are somewhat choppier than Belgium's aggregate feed; the
    # shape claim is "most changes are absorbed by headroom".
    assert silent > 0.65
    # Migration spikes reach the multi-TB scale the paper reports.
    assert max(out_gb.max(), in_gb.max()) > 500.0


def test_fig4b_cdf(benchmark, wind_run, solar_run, report_writer):
    """Fig 4b: 3-month CDF of non-zero migration transfers."""

    def run():
        stats = {}
        for kind, result in (("wind", wind_run), ("solar", solar_run)):
            out_gb = result.out_gb_series()
            in_gb = result.in_gb_series()
            stats[kind] = {
                "out": out_gb[out_gb > 0],
                "in": in_gb[in_gb > 0],
            }
        return stats

    stats = benchmark(run)
    lines = ["Figure 4b: CDF of non-zero migration transfers (3 months)"]
    ratios = {}
    for kind in ("wind", "solar"):
        for direction in ("out", "in"):
            values = stats[kind][direction]
            ratio = percentile_ratio(values, 99, 50)
            ratios[(kind, direction)] = ratio
            lines.append(
                f"{kind} {direction}: n={len(values)},"
                f" p99/p50={ratio:.1f}"
            )
            lines.append(format_cdf_points(values, unit="GB"))
    report_writer("fig4b_migration_cdf", "\n".join(lines))

    # Paper: heavy-tailed transfers — p99/p50 of 18-30x (in) and
    # 12.5-16x (out).  Assert strong spikiness in every series.
    for key, ratio in ratios.items():
        assert ratio > 3.0, f"{key} not heavy-tailed: {ratio}"
    # In-migrations have smaller spikes than out at the 99th percentile
    # (paper: ~7x smaller for wind).
    wind_out_p99 = float(np.percentile(stats["wind"]["out"], 99))
    wind_in_p99 = float(np.percentile(stats["wind"]["in"], 99))
    assert wind_in_p99 < wind_out_p99


def test_fig4_wan_occupancy(benchmark, wind_run, report_writer):
    """§5: with a 200 Gbps WAN link, migration is active 2-4% of time."""

    fraction = benchmark(
        lambda: wind_run.migration_active_fraction(link_gbps=200.0)
    )
    report_writer(
        "fig4_wan_occupancy",
        f"WAN link busy fraction at 200 Gbps: {100 * fraction:.2f}%"
        " (paper: migration occurs 2-4% of the time)",
    )
    assert 0.001 < fraction < 0.10
