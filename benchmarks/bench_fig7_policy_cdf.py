"""Figure 7: CDF of migration overhead across scheduling policies.

The paper's reading: MIP-peak achieves its low peak by performing
*more* migrations (74% zero-transfer steps vs 81% for greedy and 94%
for MIP), each at a lower volume — the CDF rises latest for MIP but
its tail is shortest for MIP-peak.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_cdf_points
from repro.sim import summarize_transfers

POLICY_ORDER = ("Greedy", "MIP-24h", "MIP", "MIP-peak")


def test_fig7_policy_cdf(benchmark, table1_results, report_writer):
    """Per-step transfer CDFs and zero fractions by policy."""

    def run():
        series = {}
        for name in POLICY_ORDER:
            _, execution, _ = table1_results[name]
            series[name] = execution.total_transfer_series() / 1e9
        return series

    series = benchmark(run)
    lines = ["Figure 7: per-step transfer CDF by policy (GB)"]
    zero_fraction = {}
    for name in POLICY_ORDER:
        values = series[name]
        zero_fraction[name] = float(np.mean(values <= 1e-12))
        lines.append(
            f"{name}: zero-steps {100 * zero_fraction[name]:.0f}%"
        )
        nonzero = values[values > 1e-12]
        if nonzero.size:
            lines.append(format_cdf_points(nonzero, unit="GB"))
    lines.append(
        "(paper zero fractions: greedy 81%, MIP 94%, MIP-peak 74%)"
    )
    report_writer("fig7_policy_cdf", "\n".join(lines))

    # Paper's headline reading of Fig 7: MIP-peak performs *more*
    # migrations than anyone (fewest zero steps), each at a *lower*
    # volume (smallest tail).  That ordering is robust here.
    assert zero_fraction["MIP-peak"] < zero_fraction["Greedy"]
    assert zero_fraction["MIP-peak"] < zero_fraction["MIP"]
    # Paper also shows MIP with the most zero steps (94% vs greedy's
    # 81%).  Our reactive execution makes MIP migrate about as *often*
    # as greedy (week-ahead forecast error puts some stable load into
    # dips) while moving far less per event — assert the volume side
    # and near-parity on frequency; EXPERIMENTS.md records the gap.
    assert zero_fraction["MIP"] > zero_fraction["Greedy"] - 0.10
    mip_median = float(np.median(series["MIP"][series["MIP"] > 1e-12]))
    greedy_median = float(
        np.median(series["Greedy"][series["Greedy"] > 1e-12])
    )
    assert mip_median < greedy_median
    # And MIP-peak's largest transfer is the smallest of all policies.
    peaks = {
        name: summarize_transfers(name, s * 1e9).peak_gb
        for name, s in series.items()
    }
    assert peaks["MIP-peak"] == min(peaks.values())
