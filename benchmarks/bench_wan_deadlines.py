"""WAN feasibility of each policy's migrations (§3 sizing, §5 claim).

The paper sizes migration bursts against the WAN: a multi-TB spike must
complete within ~5 minutes, requiring ~200 Gbps of a site's WAN share.
This bench replays each Table-1 policy's realized migrations over a
max-min-fair WAN and reports (a) the 5-minute-deadline hit rate and
(b) the smallest access-link capacity at which every migration makes
its deadline — the provisioning number a peak-aware scheduler buys
down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.wan import WanSimulator, WanTopology, flows_from_execution

POLICY_ORDER = ("Greedy", "MIP-24h", "MIP", "MIP-peak")
DEADLINE_S = 300.0


def _deadline_rate(execution, problem, access_gbps):
    flows = flows_from_execution(execution, problem.grid, min_bytes=1e9)
    if not flows:
        return 1.0, 0
    topology = WanTopology(
        tuple(problem.site_names), access_gbps=access_gbps
    )
    simulator = WanSimulator(topology, problem.grid.step_seconds)
    results = simulator.run(flows)
    met = sum(1 for r in results if r.meets_deadline(DEADLINE_S))
    return met / len(results), len(flows)


def test_wan_deadline_rates(benchmark, table1_results, report_writer):
    """5-minute deadline hit rate at the paper's 200 Gbps share."""

    def run():
        rates = {}
        for name in POLICY_ORDER:
            _, execution, problem = table1_results[name]
            rates[name] = _deadline_rate(execution, problem, 200.0)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, n_flows, f"{100 * rate:.0f}%"]
        for name, (rate, n_flows) in rates.items()
    ]
    table = format_table(
        ["Policy", "Flows", "Met 5-min deadline @200 Gbps"],
        rows,
        title="WAN deadline feasibility of realized migrations",
    )
    report_writer("wan_deadline_rates", table)

    # The paper's sizing: 200 Gbps suffices for the typical spike; the
    # peak-aware policy's small transfers essentially always fit.
    peak_rate, _ = rates["MIP-peak"]
    greedy_rate, _ = rates["Greedy"]
    assert peak_rate >= greedy_rate
    assert peak_rate > 0.95


def test_wan_provisioning_requirement(
    benchmark, table1_results, report_writer
):
    """Smallest access capacity meeting every deadline, per policy."""

    capacities = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0)

    def run():
        needed = {}
        for name in POLICY_ORDER:
            _, execution, problem = table1_results[name]
            needed[name] = None
            for capacity in capacities:
                rate, _ = _deadline_rate(execution, problem, capacity)
                if rate >= 0.999:
                    needed[name] = capacity
                    break
        return needed

    needed = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{capacity:.0f} Gbps" if capacity else "> 800 Gbps"]
        for name, capacity in needed.items()
    ]
    table = format_table(
        ["Policy", "Access capacity for 100% deadlines"],
        rows,
        title="WAN provisioning needed per scheduling policy",
    )
    report_writer("wan_provisioning", table)

    # Peak-aware scheduling needs no more provisioning than greedy —
    # flattening spikes is exactly a provisioning reduction.
    def rank(value):
        return value if value is not None else float("inf")

    assert rank(needed["MIP-peak"]) <= rank(needed["Greedy"])
