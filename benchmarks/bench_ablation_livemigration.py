"""Ablation: pre-copy live-migration costs (footnote-2 future work).

The paper's Figure-4 volumes count one memory copy per migration; real
pre-copy migration amplifies that by resending dirtied pages.  This
bench quantifies the amplification and downtime across dirty rates and
link speeds, and re-runs the §3 single-site experiment with the model
enabled to show how much the paper's traffic estimate understates wire
bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.cluster import (
    Datacenter,
    DatacenterConfig,
    LiveMigrationModel,
    estimate_migration,
)
from repro.traces import synthesize_catalog_traces
from repro.units import grid_days
from repro.workload import generate_vm_requests, workload_matched_to_power

from conftest import SEED, START

GIB = 2**30


def test_precopy_cost_surface(benchmark, report_writer):
    """Amplification/downtime vs dirty rate and link speed (16 GiB VM)."""

    def run():
        rows = []
        for link_gbps in (1.0, 10.0, 40.0):
            for dirty_mbps in (0, 100, 500):
                model = LiveMigrationModel(
                    link_gbps=link_gbps,
                    dirty_rate_bytes_per_s=dirty_mbps * 1e6,
                )
                estimate = estimate_migration(16 * GIB, model)
                rows.append(
                    (
                        link_gbps,
                        dirty_mbps,
                        estimate.amplification,
                        estimate.duration_s,
                        estimate.downtime_s,
                        estimate.converged,
                    )
                )
        return rows

    rows = benchmark(run)
    table = format_table(
        ["Link Gbps", "Dirty MB/s", "Amplification", "Duration s",
         "Downtime s", "Converged"],
        [
            [link, dirty, f"{amp:.2f}x", f"{dur:.1f}", f"{down:.3f}",
             str(conv)]
            for link, dirty, amp, dur, down, conv in rows
        ],
        title="Pre-copy live migration cost surface (16 GiB VM)",
    )
    report_writer("ablation_livemigration_surface", table)

    by_key = {(link, dirty): amp for link, dirty, amp, *_ in rows}
    # No dirtying -> exactly one memory copy.
    assert by_key[(10.0, 0)] == pytest.approx(1.0)
    # More dirtying -> more amplification; faster links -> less.
    assert by_key[(10.0, 500)] > by_key[(10.0, 100)] > by_key[(10.0, 0)]
    assert by_key[(40.0, 500)] < by_key[(1.0, 500)]


def test_single_site_with_migration_model(benchmark, report_writer):
    """§3 re-run: wire bytes vs the paper's one-copy estimate."""
    grid = grid_days(START, 7)
    from repro.traces import default_european_catalog

    catalog = default_european_catalog().subset(["BE-wind"])
    trace = synthesize_catalog_traces(catalog, grid, seed=SEED + 60)[
        "BE-wind"
    ]

    def run():
        totals = {}
        for label, model in (
            ("paper (one copy)", None),
            (
                "pre-copy, 100 MB/s dirty",
                LiveMigrationModel(dirty_rate_bytes_per_s=100e6),
            ),
            (
                "pre-copy, 400 MB/s dirty",
                LiveMigrationModel(dirty_rate_bytes_per_s=400e6),
            ),
        ):
            config = DatacenterConfig(migration_model=model)
            workload = workload_matched_to_power(
                float(trace.values.mean()), config.cluster.total_cores
            )
            requests = generate_vm_requests(grid, workload, seed=SEED + 61)
            result = Datacenter(config, trace).run(requests)
            totals[label] = float(result.out_gb_series().sum())
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["Traffic model", "Out-migration (GB/week)"],
        [[label, round(total)] for label, total in totals.items()],
        title="Wire bytes: paper's one-copy estimate vs pre-copy model",
    )
    report_writer("ablation_livemigration_site", table)

    assert (
        totals["pre-copy, 400 MB/s dirty"]
        > totals["pre-copy, 100 MB/s dirty"]
        > totals["paper (one copy)"]
    )
    # Amplification stays bounded (converging pre-copy, not runaway).
    assert totals["pre-copy, 400 MB/s dirty"] < 3 * totals[
        "paper (one copy)"
    ]
