"""Golden tests for the columnar fleet engine (repro.sim.fleet).

The load-bearing guarantee: :class:`FleetEngine` is *result-identical*
to N independent ``Datacenter.run`` calls — per-step columns, supply
evaluations, event logs, and summaries — across power models, supply
stacks (open and closed loop), pause/resume behaviour, and site counts.
The Runner routes multi-site scenarios through it, and ``run_scenarios``
ships traces to process workers through shared memory; both rewirings
are covered here.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro import obs
from repro.cluster import ClusterSpec, Datacenter, DatacenterConfig, ServerSpec
from repro.cluster.datacenter import StepColumns
from repro.experiments import (
    ArtifactCache,
    Scenario,
    WorkloadSpec,
    run_scenario,
    run_scenarios,
)
from repro.errors import ConfigurationError
from repro.experiments.cache import load_shared_traces, stage_shared_traces
from repro.sim import FleetEngine, FleetSite
from repro.sim.fleet import _NO_LOWER, _NO_UPPER, crossing_scan
from repro.supply import SupplyStack
from repro.supply.components import BatteryDispatch, GridFirmPower
from repro.traces import PowerTrace
from repro.units import TimeGrid, grid_days
from repro.workload import VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)

VM_TYPES = (
    VMType("D2", 2, 8.0),
    VMType("D4", 4, 16.0),
    VMType("D8", 8, 32.0),
    VMType("D16", 16, 64.0),
)

SUPPLY_FIELDS = (
    "delivered",
    "soc_mwh",
    "charge_mwh",
    "discharge_mwh",
    "grid_import_mwh",
    "curtailed_mwh",
)


def make_trace(seed: int, n: int, name: str) -> PowerTrace:
    """A volatile wind-like trace with hard dead spans (forces queues,
    evictions, and pause/resume churn)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = np.clip(
        0.5 + 0.45 * np.sin(2 * np.pi * t / 96) + rng.normal(0, 0.08, n),
        0.0,
        1.0,
    )
    values[(t % 500) < 30] = 0.0
    grid = TimeGrid(START, timedelta(minutes=15), n)
    return PowerTrace(grid, values, name, "wind")


def make_requests(seed: int, n: int, count: int) -> list[VMRequest]:
    rng = np.random.default_rng(seed + 7)
    requests = []
    for vm_id in range(count):
        arrival = int(rng.integers(0, n))
        lifetime = int(rng.integers(1, 300))
        vm_type = VM_TYPES[rng.integers(0, len(VM_TYPES))]
        vm_class = (
            VMClass.STABLE if rng.random() < 0.6 else VMClass.DEGRADABLE
        )
        requests.append(
            VMRequest(vm_id, arrival, lifetime, vm_type, vm_class)
        )
    return requests


def make_site(
    seed: int,
    n: int,
    count: int,
    power_model: str = "linear",
    supply: SupplyStack | None = None,
    supply_mode: str = "open",
    name: str | None = None,
    pause: bool = True,
) -> FleetSite:
    config = DatacenterConfig(
        cluster=ClusterSpec(n_servers=40, server=ServerSpec()),
        power_model=power_model,
        pause_degradable=pause,
        queue_patience_steps=12,
    )
    name = name or f"site-{seed}"
    return FleetSite(
        name=name,
        config=config,
        trace=make_trace(seed, n, name),
        requests=make_requests(seed, n, count),
        supply=supply,
        supply_mode=supply_mode,
    )


def battery_stack() -> SupplyStack:
    return SupplyStack(
        components=(BatteryDispatch(capacity_mwh=4.0, max_power_mw=2.0),)
    )


def battery_grid_stack() -> SupplyStack:
    return SupplyStack(
        components=(
            BatteryDispatch(
                capacity_mwh=2.5, max_power_mw=1.5, efficiency=0.9
            ),
            GridFirmPower(budget_mwh=300.0, max_power_mw=1.0),
        )
    )


def reference_run(site: FleetSite, engine: str = "event"):
    """The per-site ground truth: one independent Datacenter.run."""
    return Datacenter(
        site.config,
        site.trace,
        supply=site.supply,
        supply_mode=site.supply_mode,
    ).run(site.requests, engine=engine)


def assert_identical(name, got, want, events: bool = False) -> None:
    """Column-exact, supply-exact, summary-exact result equality."""
    for column in StepColumns.__slots__[1:]:
        np.testing.assert_array_equal(
            getattr(got.columns, column),
            getattr(want.columns, column),
            err_msg=f"{name}: column {column} differs",
        )
    assert (got.supply is None) == (want.supply is None), name
    if got.supply is not None:
        for field in SUPPLY_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(got.supply, field)),
                np.asarray(getattr(want.supply, field)),
                err_msg=f"{name}: supply {field} differs",
            )
    assert got.summary_dict() == want.summary_dict(), name
    if events:
        assert list(got.events) == list(want.events), name


def mixed_fleet() -> list[FleetSite]:
    """Both power models, open/closed supply stacks, heterogeneous
    lengths, an empty site, and a no-pause site — the golden gauntlet."""
    return [
        make_site(1, 2000, 1500),
        make_site(2, 2000, 1500, power_model="server"),
        make_site(3, 1500, 900, supply=battery_stack(), supply_mode="open"),
        make_site(
            4, 2000, 1200, supply=battery_stack(), supply_mode="closed"
        ),
        make_site(
            5, 2000, 1200, supply=battery_grid_stack(), supply_mode="closed"
        ),
        make_site(6, 500, 0, name="empty"),
        make_site(
            7,
            2000,
            3000,
            power_model="server",
            supply=battery_grid_stack(),
            supply_mode="closed",
        ),
        make_site(8, 2000, 50, pause=False),
    ]


class TestFleetGolden:
    def test_mixed_fleet_matches_event_and_dense(self):
        sites = mixed_fleet()
        fleet = FleetEngine(sites).run()
        assert list(fleet) == [site.name for site in sites]
        for site in sites:
            assert_identical(
                site.name, fleet[site.name], reference_run(site, "event")
            )
            assert_identical(
                f"{site.name}:dense",
                fleet[site.name],
                reference_run(site, "dense"),
            )

    def test_mixed_fleet_exercises_the_full_lifecycle(self):
        """The golden gauntlet is only meaningful if it actually hits
        queues, evictions, and pause/resume churn."""
        fleet = FleetEngine(mixed_fleet()).run()
        totals = {
            column: sum(
                int(getattr(result.columns, column).sum())
                for result in fleet.values()
            )
            for column in ("n_paused", "n_resumed", "n_evicted", "n_queued",
                           "n_launched", "n_expired", "n_completed")
        }
        assert all(count > 0 for count in totals.values()), totals

    def test_single_site_fleet(self):
        site = make_site(11, 800, 400)
        fleet = FleetEngine([site]).run()
        assert_identical(site.name, fleet[site.name], reference_run(site))

    def test_64_site_fleet(self):
        sites = [make_site(100 + i, 288, 40) for i in range(64)]
        fleet = FleetEngine(sites).run()
        assert len(fleet) == 64
        for site in sites:
            assert_identical(site.name, fleet[site.name], reference_run(site))

    def test_event_log_parity(self):
        """record_events=True reproduces the per-site audit trail."""
        sites = [
            make_site(21, 600, 300),
            make_site(
                22, 600, 300, supply=battery_stack(), supply_mode="closed"
            ),
        ]
        fleet = FleetEngine(sites, record_events=True).run()
        for site in sites:
            assert_identical(
                site.name,
                fleet[site.name],
                reference_run(site),
                events=True,
            )
        assert len(list(fleet[sites[0].name].events)) > 0

    def test_events_off_by_default(self):
        site = make_site(23, 400, 100)
        fleet = FleetEngine([site]).run()
        assert list(fleet[site.name].events) == []

    def test_duplicate_site_names_rejected(self):
        sites = [make_site(1, 200, 0, name="dup"), make_site(2, 200, 0, name="dup")]
        with pytest.raises(Exception):
            FleetEngine(sites).run()


class TestCrossingScan:
    def test_no_crossing(self):
        window = np.array([[5.0, 6.0, 7.0], [3.0, 3.0, 3.0]])
        lower = np.array([2, 1], dtype=np.int64)
        upper = np.array([_NO_UPPER, _NO_UPPER], dtype=np.int64)
        assert crossing_scan(window, lower, upper) is None

    def test_first_crossing_wins_across_sites(self):
        window = np.array([[5.0, 6.0, 0.0], [3.0, 0.0, 3.0]])
        lower = np.array([2, 1], dtype=np.int64)
        upper = np.array([_NO_UPPER, _NO_UPPER], dtype=np.int64)
        # Site 1 dips below its floor at offset 1, before site 0's
        # offset-2 dip: the fleet must wake at the earliest crossing.
        assert crossing_scan(window, lower, upper) == 1

    def test_upper_threshold_crossing(self):
        window = np.array([[1.0, 1.0, 9.0]])
        lower = np.array([_NO_LOWER], dtype=np.int64)
        upper = np.array([4], dtype=np.int64)
        assert crossing_scan(window, lower, upper) == 2

    def test_empty_window(self):
        window = np.zeros((2, 0))
        lower = np.array([1, 1], dtype=np.int64)
        upper = np.array([_NO_UPPER, _NO_UPPER], dtype=np.int64)
        assert crossing_scan(window, lower, upper) is None


class TestClosedLoopSkipAhead:
    """The closed-loop event engine must skip idle spans *and* stay
    golden-identical to the dense per-step reference."""

    @pytest.mark.parametrize("stack_factory", [battery_stack, battery_grid_stack])
    def test_event_matches_dense(self, stack_factory):
        site = make_site(
            31, 1600, 800, supply=stack_factory(), supply_mode="closed"
        )
        assert_identical(
            site.name,
            reference_run(site, "event"),
            reference_run(site, "dense"),
        )

    def test_skip_ahead_actually_skips(self):
        site = make_site(
            32, 1600, 60, supply=battery_stack(), supply_mode="closed"
        )
        sink = obs.MemorySink()
        with obs.add_sink(sink):
            reference_run(site, "event")
        skipped = [
            record["value"]
            for record in sink.metrics()
            if record["name"] == "sim.steps_skipped"
        ]
        assert skipped and skipped[0] > 0


class TestRunnerFleetRouting:
    def multi_site_scenario(self) -> Scenario:
        return Scenario(
            name="fleet-route",
            sites=("BE-wind", "NO-solar", "UK-wind"),
            grid=grid_days(START, 2),
            workload=WorkloadSpec(kind="vm_requests"),
            seed=5,
        )

    def test_multi_site_uses_fleet_stage(self, tmp_path):
        result = run_scenario(
            self.multi_site_scenario(),
            cache=ArtifactCache(tmp_path / "cache"),
        )
        names = [stage.name for stage in result.manifest.stages]
        assert "simulate:fleet" in names
        assert not any(name.startswith("simulate:BE") for name in names)
        assert set(result.simulations) == {"BE-wind", "NO-solar", "UK-wind"}

    def test_single_site_keeps_per_site_stage(self, tmp_path):
        scenario = Scenario(
            name="solo",
            sites=("BE-wind",),
            grid=grid_days(START, 2),
            workload=WorkloadSpec(kind="vm_requests"),
            seed=5,
        )
        result = run_scenario(scenario, cache=ArtifactCache(tmp_path / "c"))
        names = [stage.name for stage in result.manifest.stages]
        assert "simulate:BE-wind" in names
        assert "simulate:fleet" not in names

    def test_fleet_stage_matches_per_site_loop(self, tmp_path):
        """The routed result is identical to simulating each site with
        the same traces and workloads independently."""
        from repro.workload import (
            generate_vm_requests,
            workload_matched_to_power,
        )

        scenario = self.multi_site_scenario()
        result = run_scenario(
            scenario, cache=ArtifactCache(tmp_path / "cache")
        )
        config = DatacenterConfig(
            admission_utilization=scenario.workload.utilization
        )
        for index, name in enumerate(scenario.sites):
            trace = result.traces[name]
            workload = workload_matched_to_power(
                float(trace.values.mean()),
                config.cluster.total_cores,
                utilization=scenario.workload.utilization,
            )
            requests = generate_vm_requests(
                scenario.grid,
                workload,
                seed=scenario.effective_workload_seed + index,
            )
            want = Datacenter(config, trace).run(requests)
            assert_identical(
                name, result.simulations[name], want, events=True
            )


class TestSharedMemoryTraces:
    def test_stage_load_round_trip(self):
        traces = {
            "a": make_trace(41, 700, "a"),
            "b": make_trace(42, 700, "b"),
        }
        descriptor, segment = stage_shared_traces(traces)
        try:
            loaded = load_shared_traces(descriptor)
        finally:
            segment.close()
            segment.unlink()
        assert list(loaded) == ["a", "b"]
        for name, trace in traces.items():
            clone = loaded[name]
            np.testing.assert_array_equal(clone.values, trace.values)
            assert clone.grid == trace.grid
            assert clone.name == trace.name
            assert clone.kind == trace.kind
            assert clone.capacity_mw == trace.capacity_mw
            # The copy must survive the segment's unlink.
            assert clone.values.base is None or clone.values.flags.owndata

    def test_process_backend_round_trips_fleet_scenarios(self, tmp_path):
        """Multi-site scenarios through the process pool: traces ride
        shared memory, sites ride the fleet engine, and the summaries
        match the serial reference exactly."""
        scenarios = [
            Scenario(
                name=f"shm-{seed}",
                sites=("BE-wind", "NO-solar"),
                grid=grid_days(START, 2),
                workload=WorkloadSpec(kind="vm_requests"),
                seed=seed,
            )
            for seed in range(2)
        ]
        serial = run_scenarios(
            scenarios,
            jobs=1,
            backend="serial",
            cache=ArtifactCache(tmp_path / "cache-serial"),
        )
        parallel = run_scenarios(
            scenarios,
            jobs=2,
            backend="process",
            cache=ArtifactCache(tmp_path / "cache-process"),
        )
        assert serial.summaries() == parallel.summaries()
        for manifest in parallel.manifests:
            assert "simulate:fleet" in [s.name for s in manifest.stages]

    def test_staged_traces_record_cache_hits(self, tmp_path):
        scenarios = [
            Scenario(
                name="hits",
                sites=("BE-wind",),
                grid=grid_days(START, 2),
                workload=WorkloadSpec(kind="vm_requests"),
                seed=3,
            )
        ]
        cache = ArtifactCache(tmp_path / "cache")
        cold = run_scenarios(scenarios, jobs=1, cache=cache)
        warm = run_scenarios(scenarios, jobs=1, cache=cache)

        def traces_hit(batch):
            (manifest,) = batch.manifests
            (stage,) = [s for s in manifest.stages if s.name == "traces"]
            return stage.cache_hit

        assert traces_hit(cold) is False
        assert traces_hit(warm) is True


def grid_stack() -> SupplyStack:
    return SupplyStack(
        components=(GridFirmPower(budget_mwh=400.0, max_power_mw=1.5),)
    )


class TestBatchedClosedFleet:
    """The lockstep batched closed-loop dispatcher vs per-site engines.

    Heterogeneous stacks (battery-only, grid-only, battery+grid, and
    empty/open sites mixed in) across fleet sizes: forcing every
    closed group through :class:`~repro.supply.batch.BatchedDispatch`
    (``closed_batch_min_sites=1``) must be bitwise identical to
    forcing every site through the per-site span-kernel engine.
    """

    STACKS = (battery_stack, grid_stack, battery_grid_stack, None)

    def heterogeneous_fleet(self, n_sites: int, n: int) -> list[FleetSite]:
        sites = []
        for i in range(n_sites):
            factory = self.STACKS[i % len(self.STACKS)]
            sites.append(
                make_site(
                    100 + i,
                    n,
                    600,
                    power_model="server" if i % 5 == 0 else "linear",
                    supply=factory() if factory else None,
                    supply_mode="closed" if factory else "open",
                    name=f"hetero-{i}",
                )
            )
        return sites

    @pytest.mark.parametrize("n_sites", [1, 8, 64])
    def test_batched_matches_per_site_bitwise(self, n_sites):
        n = 1200 if n_sites <= 8 else 500
        sites = self.heterogeneous_fleet(n_sites, n)
        batched = FleetEngine(
            sites, record_events=True, closed_batch_min_sites=1
        ).run()
        per_site = FleetEngine(
            sites, record_events=True, closed_batch_min_sites=10**9
        ).run()
        for site in sites:
            assert_identical(
                site.name, batched[site.name], per_site[site.name],
                events=True,
            )

    def test_batched_matches_independent_runs(self):
        sites = self.heterogeneous_fleet(8, 1200)
        batched = FleetEngine(
            sites, record_events=True, closed_batch_min_sites=1
        ).run()
        for site in sites:
            assert_identical(
                site.name, batched[site.name], reference_run(site),
                events=True,
            )

    def test_default_threshold_routes_large_groups(self):
        # 16 battery sites of one length: the default threshold admits
        # them to the batched path, and results still match per-site.
        sites = [
            make_site(
                200 + i, 800, 500,
                supply=battery_stack(), supply_mode="closed",
                name=f"batch-{i}",
            )
            for i in range(16)
        ]
        batched = FleetEngine(sites).run()
        per_site = FleetEngine(sites, closed_batch_min_sites=10**9).run()
        for site in sites:
            assert_identical(
                site.name, batched[site.name], per_site[site.name]
            )

    def test_threshold_validation(self):
        sites = [make_site(1, 100, 10)]
        with pytest.raises(ConfigurationError):
            FleetEngine(sites, closed_batch_min_sites=0)
