"""Tests for the multi-site execution engine and result summaries."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.sched import Placement, SchedulingProblem, SiteCapacity
from repro.sim import (
    PolicyComparison,
    execute_placement,
    summarize_transfers,
)
from repro.units import TimeGrid
from repro.workload import Application, VMType

START = datetime(2020, 5, 1)


def make_grid(n):
    return TimeGrid(START, timedelta(hours=1), n)


def make_app(app_id=0, arrival=0, duration=6, vms=10, cores=2,
             memory=8.0, stable=1.0):
    return Application(
        app_id, arrival, duration, vms, VMType(f"T{cores}", cores, memory),
        stable,
    )


def one_site_problem(capacity, apps, total=1000, bpc=1.0):
    n = len(capacity)
    return SchedulingProblem(
        make_grid(n),
        (SiteCapacity("a", total, np.asarray(capacity, float)),),
        tuple(apps),
        bpc,
    )


class TestExecution:
    def test_no_traffic_when_capacity_ample(self):
        problem = one_site_problem(np.full(6, 500.0), [make_app()])
        result = execute_placement(
            problem, Placement({0: {"a": 10}}), {"a": np.full(6, 500.0)}
        )
        assert result.total_transfer_gb() == 0.0
        assert result.site("a").stable_availability() == 1.0

    def test_dip_roundtrip_traffic(self):
        capacity = np.array([100, 100, 0, 0, 100, 100], dtype=float)
        problem = one_site_problem(np.full(6, 100.0), [make_app()], bpc=1.0)
        result = execute_placement(
            problem, Placement({0: {"a": 10}}), {"a": capacity}
        )
        site = result.site("a")
        # 20 stable cores out at step 2, back at step 4.
        assert site.out_bytes[2] == pytest.approx(20.0)
        assert site.in_bytes[4] == pytest.approx(20.0)
        assert result.total_transfer_series().sum() == pytest.approx(40.0)

    def test_degradable_pauses_without_traffic(self):
        capacity = np.array([100, 0, 0, 100], dtype=float)
        app = make_app(duration=4, stable=0.0)
        problem = one_site_problem(np.full(4, 100.0), [app])
        result = execute_placement(
            problem, Placement({0: {"a": 10}}), {"a": capacity}
        )
        site = result.site("a")
        assert result.total_transfer_gb() == 0.0
        assert site.paused_degradable[1] == pytest.approx(20.0)
        assert site.degradable_availability() < 1.0

    def test_planned_displacement_preempts(self):
        # Plan displaces 10 cores one step before the actual dip: the
        # migration happens early and is split across steps.
        capacity = np.array([100, 100, 0, 100], dtype=float)
        app = make_app(duration=4, vms=10, cores=2, stable=1.0)
        problem = one_site_problem(np.full(4, 100.0), [app])
        planned = {"a": np.array([0.0, 10.0, 20.0, 0.0])}
        placement = Placement({0: {"a": 10}}, planned)
        result = execute_placement(
            problem, placement, {"a": capacity}, follow_plan=True
        )
        site = result.site("a")
        assert site.out_bytes[1] == pytest.approx(10.0)
        assert site.out_bytes[2] == pytest.approx(10.0)
        ignored = execute_placement(
            problem, placement, {"a": capacity}, follow_plan=False
        )
        assert ignored.site("a").out_bytes[2] == pytest.approx(20.0)

    def test_plan_cannot_reduce_required(self):
        # Plan says zero, but reality forces displacement anyway.
        capacity = np.array([100, 0], dtype=float)
        app = make_app(duration=2, vms=10, cores=2, stable=1.0)
        problem = one_site_problem(np.full(2, 100.0), [app])
        placement = Placement({0: {"a": 10}}, {"a": np.zeros(2)})
        result = execute_placement(problem, placement, {"a": capacity})
        assert result.site("a").displaced[1] == pytest.approx(20.0)

    def test_displacement_capped_by_stable_load(self):
        # Plan asks for more displacement than stable cores exist.
        capacity = np.full(2, 100.0)
        app = make_app(duration=2, vms=10, cores=2, stable=0.5)
        problem = one_site_problem(capacity, [app])
        placement = Placement(
            {0: {"a": 10}}, {"a": np.array([0.0, 999.0])}, preemptive=True
        )
        result = execute_placement(problem, placement, {"a": capacity})
        assert result.site("a").displaced[1] == pytest.approx(10.0)

    def test_missing_capacity_rejected(self):
        problem = one_site_problem(np.full(4, 100.0), [make_app(duration=4)])
        with pytest.raises(SchedulingError):
            execute_placement(problem, Placement({0: {"a": 10}}), {})

    def test_wrong_length_capacity_rejected(self):
        problem = one_site_problem(np.full(4, 100.0), [make_app(duration=4)])
        with pytest.raises(SchedulingError):
            execute_placement(
                problem, Placement({0: {"a": 10}}), {"a": np.zeros(3)}
            )

    def test_unknown_site_lookup(self):
        problem = one_site_problem(np.full(4, 100.0), [make_app(duration=4)])
        result = execute_placement(
            problem, Placement({0: {"a": 10}}), {"a": np.full(4, 100.0)}
        )
        with pytest.raises(KeyError):
            result.site("zz")


class TestSummaries:
    def test_summary_fields(self):
        series = np.array([0.0, 0.0, 5e9, 0.0, 1e9])
        summary = summarize_transfers("X", series)
        assert summary.total_gb == pytest.approx(6.0)
        assert summary.peak_gb == pytest.approx(5.0)
        assert summary.zero_fraction == pytest.approx(0.6)
        assert summary.std_gb > 0

    def test_summary_validation(self):
        with pytest.raises(SchedulingError):
            summarize_transfers("X", np.zeros(0))

    def test_comparison_ratios(self):
        greedy = summarize_transfers(
            "Greedy", np.array([0.0, 10e9, 10e9, 0.0])
        )
        mip = summarize_transfers("MIP", np.array([0.0, 5e9, 5e9, 0.0]))
        comparison = PolicyComparison([greedy, mip])
        assert comparison.improvement_total("MIP", "Greedy") == (
            pytest.approx(0.5)
        )
        assert comparison.improvement_p99("MIP", "Greedy") == (
            pytest.approx(2.0)
        )
        assert comparison.improvement_std("MIP", "Greedy") == (
            pytest.approx(2.0)
        )

    def test_comparison_unknown_policy(self):
        comparison = PolicyComparison(
            [summarize_transfers("A", np.array([1e9]))]
        )
        with pytest.raises(KeyError):
            comparison.by_policy("B")

    def test_table_rendering(self):
        comparison = PolicyComparison(
            [
                summarize_transfers("Greedy", np.array([0.0, 10e9])),
                summarize_transfers("MIP", np.array([0.0, 5e9])),
            ]
        )
        table = comparison.as_table()
        assert "Greedy" in table and "MIP" in table
        assert "Total" in table

    def test_comparison_summary_dict(self):
        comparison = PolicyComparison(
            [
                summarize_transfers("Greedy", np.array([0.0, 10e9])),
                summarize_transfers("MIP", np.array([0.0, 5e9])),
            ]
        )
        summary = comparison.summary_dict()
        assert set(summary) == {"Greedy", "MIP"}
        assert summary["Greedy"]["total_gb"] == pytest.approx(10.0)
        assert summary["MIP"]["zero_fraction"] == pytest.approx(0.5)

    def test_execution_summary_dict(self):
        capacity = np.array([100, 100, 0, 0, 100, 100], dtype=float)
        problem = one_site_problem(np.full(6, 100.0), [make_app()], bpc=1.0)
        result = execute_placement(
            problem, Placement({0: {"a": 10}}), {"a": capacity}
        )
        summary = result.summary_dict()
        assert summary["total_transfer_gb"] == pytest.approx(
            result.total_transfer_gb()
        )
        site = summary["sites"]["a"]
        assert site["stable_availability"] == pytest.approx(
            result.site("a").stable_availability()
        )
        assert site["out_gb"] >= 0.0 and site["in_gb"] >= 0.0

    def test_site_lookup_is_indexed(self):
        problem = one_site_problem(np.full(4, 100.0), [make_app(duration=4)])
        result = execute_placement(
            problem, Placement({0: {"a": 10}}), {"a": np.full(4, 100.0)}
        )
        # The post-init index backs site(); same object, not a copy.
        assert result.site("a") is result.sites[0]
