"""Cross-module property-based tests on core invariants."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cluster import ClusterSpec, ServerSpec
from repro.cluster.datacenter import _ServerPool
from repro.cluster.vm import VM
from repro.errors import SolverError
from repro.sched import (
    GreedyScheduler,
    MIPScheduler,
    Placement,
    SchedulingProblem,
    SiteCapacity,
    evaluate_placement_overhead,
)
from repro.units import TimeGrid
from repro.workload import Application, VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)


def make_vm(vm_id, cores, memory_gib=None):
    memory_gib = memory_gib if memory_gib is not None else cores * 4.0
    return VM(
        VMRequest(
            vm_id, 0, 10, VMType(f"T{cores}", cores, memory_gib),
            VMClass.STABLE,
        )
    )


class TestServerPoolInvariants:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["host", "release"]),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_buckets_always_consistent(self, operations):
        """After any operation sequence, every server sits in exactly
        the bucket matching its free-core count."""
        pool = _ServerPool(
            ClusterSpec(n_servers=6, server=ServerSpec(cores=16))
        )
        hosted: dict[int, tuple] = {}
        vm_id = 0
        for op, cores in operations:
            if op == "host":
                vm = make_vm(vm_id, cores)
                vm_id += 1
                server = pool.find(vm, "bestfit")
                if server is not None:
                    pool.host(server, vm)
                    hosted[vm.vm_id] = (vm, server)
            elif hosted:
                key = next(iter(hosted))
                vm, server = hosted.pop(key)
                pool.release(server, vm)
                vm.state = vm.state  # no transition needed for release
            # Invariant: buckets partition the servers correctly.
            seen = set()
            for free, bucket in enumerate(pool._buckets):
                for server_id in bucket:
                    assert pool.servers[server_id].free_cores == free
                    assert server_id not in seen
                    seen.add(server_id)
            assert seen == set(range(6))

    @given(cores=st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_find_modes_agree_on_feasibility(self, cores):
        pool = _ServerPool(
            ClusterSpec(n_servers=4, server=ServerSpec(cores=16))
        )
        # Partially fill server 0.
        filler = make_vm(999, 10)
        pool.host(pool.servers[0], filler)
        vm = make_vm(0, cores)
        results = {
            mode: pool.find(vm, mode)
            for mode in ("bestfit", "firstfit", "worstfit")
        }
        # All modes agree on whether placement is possible at all.
        feasible = {mode: r is not None for mode, r in results.items()}
        assert len(set(feasible.values())) == 1


def random_problem(draw_seed, n_sites=2, n_apps=4, n_steps=12):
    rng = np.random.default_rng(draw_seed)
    grid = TimeGrid(START, timedelta(hours=1), n_steps)
    sites = []
    for s in range(n_sites):
        capacity = rng.integers(100, 1000, size=n_steps).astype(float)
        sites.append(SiteCapacity(f"s{s}", 1000, capacity))
    apps = []
    for a in range(n_apps):
        arrival = int(rng.integers(0, n_steps - 1))
        duration = int(rng.integers(1, n_steps - arrival))
        apps.append(
            Application(
                a, arrival, duration, int(rng.integers(1, 20)),
                VMType("T2", 2, 8.0), float(rng.uniform(0, 1)),
            )
        )
    return SchedulingProblem(
        grid, tuple(sites), tuple(apps), bytes_per_core=4 * 2**30
    )


class TestMIPProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_mip_placements_always_complete_and_capped(self, seed):
        problem = random_problem(seed)
        try:
            placement = MIPScheduler(time_limit_s=20.0).schedule(problem)
        except SolverError:
            # Genuinely infeasible draws are acceptable; greedy must
            # then also fail or the capacity is fragmented.
            return
        placement.validate_complete(problem)
        from repro.sched.overhead import placement_load_series

        _, total = placement_load_series(problem, placement)
        for site in problem.sites:
            cap = problem.utilization_cap * site.total_cores
            assert np.max(total[site.name]) <= cap + 1e-6

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_mip_never_worse_than_greedy_on_planning_objective(
        self, seed
    ):
        """On the *forecast* capacities both schedulers see, the MIP's
        total predicted overhead is at most greedy's (it optimizes
        exactly that objective)."""
        problem = random_problem(seed)
        try:
            greedy = GreedyScheduler().schedule(problem)
        except Exception:
            return
        try:
            mip = MIPScheduler(time_limit_s=20.0).schedule(problem)
        except SolverError:
            return

        def planning_cost(placement):
            per_site = evaluate_placement_overhead(problem, placement)
            return sum(series.sum() for series in per_site.values())

        assert planning_cost(mip) <= planning_cost(greedy) + 1e-3

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_peak_weight_never_raises_planned_peak(self, seed):
        problem = random_problem(seed)
        try:
            plain = MIPScheduler(time_limit_s=20.0).schedule(problem)
            peaky = MIPScheduler(
                peak_weight=100.0, time_limit_s=20.0
            ).schedule(problem)
        except SolverError:
            return

        def planned_peak(placement):
            per_site = evaluate_placement_overhead(problem, placement)
            series = np.sum(list(per_site.values()), axis=0)
            return float(series.max())

        # The peak objective bounds per-site-step traffic; the summed
        # series is a looser quantity, so allow small slack.
        assert planned_peak(peaky) <= planned_peak(plain) * 1.5 + 1e-3
