"""Tests for repro.sched.decompose: windowed + relax-and-fix MIP solves.

The golden tests pin the decomposition contract from three angles:

- *Separable instances* (no app or background crosses a window seam):
  every decomposition mode must reproduce the monolithic placement
  exactly, including in parallel.
- *Seam carry*: when displacement is held across a window boundary,
  the decomposed solve charges the boundary ``u`` forward (objective-
  exact), while :class:`RollingMIPScheduler` deliberately re-charges
  it from zero (the paper's plain re-solve-daily semantics).
- *Relax-and-fix*: the certified LP gap bounds the integer solution,
  and a breached gap falls back to the full MIP.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro import obs
from repro.errors import SolverError
from repro.sched import (
    DecomposeSpec,
    MIPScheduler,
    RollingMIPScheduler,
    SchedulingProblem,
    SiteCapacity,
    placement_objective,
    plan_windows,
)
from repro.sched.mip import _Layout, _assemble, _assemble_reference
from repro.units import TimeGrid
from repro.workload import Application, VMType

START = datetime(2015, 5, 1)


def make_grid(n=48):
    return TimeGrid(START, timedelta(hours=1), n)


def make_app(app_id=0, arrival=0, duration=24, vms=10, cores=2,
             memory=8.0, stable=1.0):
    return Application(
        app_id, arrival, duration, vms, VMType(f"T{cores}", cores, memory),
        stable,
    )


def separable_problem():
    """Two apps fully inside different 24-step windows, each with a
    strictly-best site: app P pays 20 cores of displacement at b (dip
    in window 1), app Q pays 24 at a (dip in window 2)."""
    n = 48
    cap_a = np.full(n, 400.0)
    cap_a[30:34] = 40.0  # Q at a would displace 64 - 40 = 24 cores
    cap_b = np.full(n, 400.0)
    cap_b[8:12] = 40.0  # P at b would displace 60 - 40 = 20 cores
    sites = (
        SiteCapacity("a", 400, cap_a),
        SiteCapacity("b", 400, cap_b),
    )
    apps = (
        make_app(0, arrival=2, duration=18, vms=15, cores=4),  # 60 stable
        make_app(1, arrival=26, duration=18, vms=16, cores=4),  # 64 stable
    )
    return SchedulingProblem(
        make_grid(n), sites, apps, bytes_per_core=1e9,
        utilization_cap=0.9,
    )


def seam_problem(second_dip=140.0, with_arrival=True):
    """One 150-core VM forced onto the only site, displaced to 40 by a
    window-1 dip; the window-2 dip stays under the held 40, so carrying
    the boundary ``u`` makes window 2 free while a from-zero re-solve
    re-charges it."""
    n = 48
    cap_a = np.full(n, 400.0)
    cap_a[10:14] = 110.0  # floor 150 - 110 = 40, held for the horizon
    cap_a[30:34] = second_dip  # with Y: 170 - 140 = 30 <= held 40
    sites = (SiteCapacity("a", 400, cap_a),)
    apps = [Application(0, 0, n, 1, VMType("xl", 150, 300.0), 1.0)]
    if with_arrival:
        # A window-2 arrival forces the rolling scheduler to actually
        # re-solve chunk 2 (chunks with no arrivals are skipped).
        apps.append(Application(1, 26, 10, 1, VMType("m", 20, 40.0), 1.0))
    return SchedulingProblem(
        make_grid(n), sites, tuple(apps), bytes_per_core=1e9,
        utilization_cap=0.9,
    )


class TestDecomposeSpec:
    def test_parse_round_trip(self):
        spec = DecomposeSpec.parse(
            "window:24,overlap:4,relax-fix,gap:0.05,jobs:4,backend:thread"
        )
        assert spec.window_steps == 24
        assert spec.overlap_steps == 4
        assert spec.relax_fix is True
        assert spec.max_gap == 0.05
        assert spec.jobs == 4
        assert spec.backend == "thread"
        assert DecomposeSpec.parse(spec.token()) == spec

    def test_token_is_canonical(self):
        assert DecomposeSpec.parse("window:24").token() == "window:24"
        assert DecomposeSpec.parse("relax-fix").token() == "relax-fix"

    def test_no_fallback(self):
        spec = DecomposeSpec.parse("window:12,no-fallback")
        assert spec.fallback is False

    def test_unknown_token_raises(self):
        with pytest.raises(SolverError):
            DecomposeSpec.parse("window:24,frobnicate")

    def test_bad_value_raises(self):
        with pytest.raises(SolverError):
            DecomposeSpec.parse("window:zero")
        with pytest.raises(SolverError):
            DecomposeSpec.parse("window:0")
        with pytest.raises(SolverError):
            DecomposeSpec.parse("gap:-0.5")

    def test_needs_a_strategy(self):
        with pytest.raises(SolverError):
            DecomposeSpec()
        with pytest.raises(SolverError):
            DecomposeSpec.parse("jobs:4")

    def test_scheduler_accepts_spec_or_string(self):
        by_str = MIPScheduler(decompose="window:24")
        by_spec = MIPScheduler(decompose=DecomposeSpec(window_steps=24))
        assert by_str.decompose == by_spec.decompose


class TestPlanWindows:
    def test_covers_horizon_without_gaps(self):
        plans = plan_windows(50, 24)
        assert [(p.start, p.commit_end) for p in plans] == [
            (0, 24), (24, 48), (48, 50),
        ]

    def test_overlap_extends_lookahead_only(self):
        plans = plan_windows(48, 24, overlap_steps=6)
        # Commit ranges still partition the horizon.
        assert [(p.start, p.commit_end) for p in plans] == [
            (0, 24), (24, 48),
        ]
        assert plans[0].ext_end == 30
        assert plans[1].ext_end == 48  # clipped at horizon

    def test_single_window(self):
        plans = plan_windows(10, 24)
        assert len(plans) == 1
        assert plans[0].steps == 10


class TestGoldenSeparable:
    """On time-separable instances every mode must reproduce the
    monolithic placement exactly (ISSUE 8 acceptance)."""

    @pytest.fixture(scope="class")
    def monolithic(self):
        problem = separable_problem()
        scheduler = MIPScheduler()
        placement = scheduler.schedule(problem)
        return problem, placement

    def test_monolithic_baseline_is_strict(self, monolithic):
        _, placement = monolithic
        assert placement.assignment == {0: {"a": 15}, 1: {"b": 16}}

    @pytest.mark.parametrize("spec", [
        "window:24",
        "window:24,overlap:6",
        "window:24,jobs:2,backend:thread",
        "window:24,jobs:2,backend:serial",
        "relax-fix",
        "window:24,relax-fix",
    ])
    def test_matches_monolithic(self, monolithic, spec):
        problem, p_mono = monolithic
        scheduler = MIPScheduler(decompose=spec)
        p_deco = scheduler.schedule(problem)
        assert p_deco.assignment == p_mono.assignment
        om = placement_objective(problem, p_mono)
        od = placement_objective(problem, p_deco)
        assert od == pytest.approx(om, abs=1e-6)
        assert scheduler.last_timings.fell_back is False

    def test_windowed_timings_telemetry(self, monolithic):
        problem, _ = monolithic
        scheduler = MIPScheduler(decompose="window:24")
        scheduler.schedule(problem)
        t = scheduler.last_timings
        assert t.mode == "window"
        assert [w.index for w in t.windows] == [0, 1]
        assert [w.start for w in t.windows] == [0, 24]
        assert all(w.n_apps == 1 for w in t.windows)
        # Totals are sums over the windows.
        assert t.solve_s == pytest.approx(
            sum(w.solve_s for w in t.windows))
        assert t.assembly_s == pytest.approx(
            sum(w.assembly_s for w in t.windows))
        assert t.n_rows == sum(w.n_rows for w in t.windows)
        assert t.objective is not None

    def test_relax_fix_timings(self, monolithic):
        problem, _ = monolithic
        scheduler = MIPScheduler(decompose="relax-fix")
        scheduler.schedule(problem)
        t = scheduler.last_timings
        assert t.mode == "relax-fix"
        assert t.gap is not None
        assert t.gap <= 0.01
        assert t.fell_back is False


class TestSeamCarry:
    """Satellite: seam semantics at chunk boundaries — decomposed
    solves carry ``u`` across the seam; RollingMIPScheduler re-charges
    it from zero."""

    def test_decomposed_matches_monolithic_across_seam(self):
        problem = seam_problem()
        p_mono = MIPScheduler().schedule(problem)
        deco = MIPScheduler(decompose="window:24")
        p_deco = deco.schedule(problem)
        assert p_mono.assignment == {0: {"a": 1}, 1: {"a": 1}}
        assert p_deco.assignment == p_mono.assignment
        om = placement_objective(problem, p_mono)
        od = placement_objective(problem, p_deco)
        assert od == pytest.approx(om, abs=1e-6)
        # The planned u is the running max: held at 40 through the
        # second dip, with no extra migration at the seam.
        u = p_deco.planned_displacement["a"]
        assert u[9] == 0.0
        assert np.all(u[10:] == 40.0)

    def test_window_two_is_free_under_carry(self):
        problem = seam_problem()
        deco = MIPScheduler(decompose="window:24")
        deco.schedule(problem)
        w0, w1 = deco.last_timings.windows
        # Window 1 charges the 40-core rise; window 2 only epsilon
        # holding — the 30-core floor sits under the carried u.
        assert w0.objective == pytest.approx(40.0, abs=0.1)
        assert w1.objective < 1.0

    def test_rolling_recharges_displacement_from_zero(self):
        problem = seam_problem()
        roll = RollingMIPScheduler(window_steps=24)
        p_roll = roll.schedule(problem)
        # Same assignment (there is only one site) ...
        assert p_roll.assignment == {0: {"a": 1}, 1: {"a": 1}}
        # ... but chunk 2 re-charged the displacement it inherited:
        # from u=0 it pays the full 30-core floor again.
        assert len(roll.last_chunk_timings) == 2
        chunk2 = roll.last_chunk_timings[1]
        assert chunk2.objective == pytest.approx(30.0, abs=0.1)

    def test_rolling_matches_monolithic_when_seams_are_clean(self):
        """Boundary-zero equivalence: with no displacement held at the
        seam, chunked and unchunked solves agree."""
        problem = separable_problem()
        p_mono = MIPScheduler().schedule(problem)
        p_roll = RollingMIPScheduler(window_steps=24).schedule(problem)
        assert p_roll.assignment == p_mono.assignment

    def test_initial_displacement_makes_staying_free(self):
        """The boundary u parameter feeds C3's t=0 row: demand under
        the carried displacement charges nothing."""
        n = 24
        cap = np.full(n, 400.0)
        cap[4:8] = 120.0  # floor 150 - 120 = 30
        sites = (SiteCapacity("a", 400, cap),)
        app = Application(0, 0, n, 1, VMType("xl", 150, 300.0), 1.0)
        problem = SchedulingProblem(
            make_grid(n), sites, (app,), bytes_per_core=1e9,
            utilization_cap=0.9,
        )
        cold = MIPScheduler()
        cold.schedule(problem)
        carried = MIPScheduler()
        carried.schedule(problem, initial_displacement={"a": 40.0})
        assert cold.last_timings.objective == pytest.approx(30.0, abs=0.1)
        # Under a 40-core carry the 30-core floor is already paid.
        assert carried.last_timings.objective < 1.0

    def test_negative_initial_displacement_rejected(self):
        problem = seam_problem(with_arrival=False)
        with pytest.raises(SolverError):
            MIPScheduler().schedule(
                problem, initial_displacement={"a": -1.0})


class TestAssemblerGolden:
    """The vectorized assembler must agree with the reference loop,
    including the boundary-displacement C3 bounds."""

    def test_initial_displacement_bounds_match(self):
        problem = separable_problem()
        layout = _Layout(
            len(problem.apps), len(problem.sites), problem.grid.n,
            peak=False,
        )
        u0 = {"a": 7.0, "b": 3.0}
        f_m, f_lb, f_ub = _assemble(
            problem, layout, None, None, None, initial_displacement=u0)
        s_m, s_lb, s_ub = _assemble_reference(
            problem, layout, None, None, None, initial_displacement=u0)
        assert (f_m - s_m).nnz == 0
        np.testing.assert_allclose(f_lb, s_lb)
        np.testing.assert_allclose(f_ub, s_ub)


class TestSpanningApps:
    """Apps that cross a seam are solved myopically per window; the
    audit bounds the merged objective against the per-window charges
    and the result stays within the configured gap here."""

    def test_spanning_app_within_gap(self):
        problem = seam_problem(with_arrival=False)
        p_mono = MIPScheduler().schedule(problem)
        deco = MIPScheduler(decompose="window:24,gap:0.01")
        p_deco = deco.schedule(problem)
        om = placement_objective(problem, p_mono)
        od = placement_objective(problem, p_deco)
        assert od <= om * 1.01 + 1e-6
        assert deco.last_timings.fell_back is False


class TestRelaxFix:
    def test_fallback_on_breached_gap(self):
        """A symmetric instance whose LP optimum fractionally splits
        VMs strictly beats any integer placement, so with gap 0 the
        reduced solve must fall back to the full MIP."""
        n = 24
        dip = np.full(n, 400.0)
        dip[8:12] = 5.0
        sites = (
            SiteCapacity("a", 400, dip.copy()),
            SiteCapacity("b", 400, dip.copy()),
        )
        app = make_app(0, arrival=0, duration=24, vms=3, cores=4)
        problem = SchedulingProblem(
            make_grid(n), sites, (app,), bytes_per_core=1e9,
            utilization_cap=0.9,
        )
        scheduler = MIPScheduler(decompose="relax-fix,gap:0.0")
        placement = scheduler.schedule(problem)
        placement.validate_complete(problem)
        t = scheduler.last_timings
        assert t.mode == "relax-fix"
        assert t.fell_back is True
        # Fallback still produces the true integer optimum.
        p_mono = MIPScheduler().schedule(problem)
        assert placement_objective(problem, placement) == pytest.approx(
            placement_objective(problem, p_mono), abs=1e-6)

    def test_continuous_vms_have_zero_gap(self):
        problem = separable_problem()
        scheduler = MIPScheduler(
            integer_vms=False, decompose="relax-fix")
        scheduler.schedule(problem)
        assert scheduler.last_timings.gap == 0.0


class TestFailureDiagnostics:
    def make_infeasible_window_two(self):
        """Window 1 solves fine; the window-2 app exceeds every site's
        allocation cap, so that window's MIP is infeasible."""
        n = 48
        sites = (SiteCapacity("a", 100, np.full(n, 100.0)),)
        apps = (
            make_app(0, arrival=0, duration=20, vms=2, cores=4),
            Application(1, 26, 10, 1, VMType("huge", 95, 190.0), 1.0),
        )
        return SchedulingProblem(
            make_grid(n), sites, apps, bytes_per_core=1e9,
            utilization_cap=0.9,
        )

    def test_solver_error_carries_window_context(self):
        problem = self.make_infeasible_window_two()
        scheduler = MIPScheduler(
            decompose="window:24,no-fallback")
        with pytest.raises(SolverError) as err:
            scheduler.schedule(problem)
        assert err.value.window == 1
        assert err.value.shape is not None
        assert "window=1" in str(err.value)

    def test_fallback_reports_monolithic_failure(self):
        """With fallback on, an instance that is globally infeasible
        still raises — from the monolithic retry."""
        problem = self.make_infeasible_window_two()
        scheduler = MIPScheduler(decompose="window:24")
        with pytest.raises(SolverError):
            scheduler.schedule(problem)


class TestObservability:
    """Satellite: per-window spans nest under ``mip.schedule`` and
    render in the report tree."""

    def test_window_spans_nest_under_schedule(self):
        problem = separable_problem()
        with obs.use(obs.MemorySink()) as mem:
            MIPScheduler(decompose="window:24").schedule(problem)
        spans = [r for r in mem.records if r.get("type") == "span"]
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        assert "mip.schedule" in by_name
        assert len(by_name["mip.window"]) == 2
        # The outer decomposed schedule span is the tree root; each
        # window span hangs directly off it (the inner per-window
        # solves then nest their own mip.schedule under the window).
        root = next(
            r for r in by_name["mip.schedule"]
            if r.get("parent_id") is None)
        for window_span in by_name["mip.window"]:
            assert window_span["parent_id"] == root["span_id"]
        assert root["attrs"]["decompose"] == "window:24"

    def test_report_renders_window_tree(self):
        problem = separable_problem()
        with obs.use(obs.MemorySink()) as mem:
            MIPScheduler(decompose="window:24").schedule(problem)
        text = obs.render_report(mem.records)
        lines = text.splitlines()
        schedule_idx = next(
            i for i, line in enumerate(lines) if "mip.schedule" in line)
        window_lines = [line for line in lines if "mip.window" in line]
        assert window_lines, text
        # Window spans render below and indented past their parent.
        schedule_indent = len(lines[schedule_idx]) - len(
            lines[schedule_idx].lstrip())
        for line in window_lines:
            assert len(line) - len(line.lstrip()) > schedule_indent


highspy = pytest.importorskip  # placate linters; real guard below
try:
    import highspy  # type: ignore[no-redef]  # noqa: F811
except ImportError:
    highspy = None


class TestWarmStartChaining:
    @pytest.mark.skipif(highspy is None, reason="needs highspy")
    def test_warm_start_used_flips_true_on_resolve(self):
        """Satellite: with highspy installed, the second solve of an
        identically-shaped model is seeded from the first."""
        problem = separable_problem()
        scheduler = MIPScheduler(warm_start=True)
        scheduler.schedule(problem)
        assert scheduler.last_timings.warm_start_used is False
        scheduler.schedule(problem)
        assert scheduler.last_timings.warm_start_used is True

    @pytest.mark.skipif(highspy is None, reason="needs highspy")
    def test_windowed_chain_seeds_later_windows(self):
        """Equal-shaped consecutive windows warm-start from their
        predecessor inside a single decomposed schedule call."""
        n = 48
        sites = (
            SiteCapacity("a", 400, np.full(n, 400.0)),
            SiteCapacity("b", 400, np.full(n, 300.0)),
        )
        apps = (
            make_app(0, arrival=2, duration=18, vms=10, cores=4),
            make_app(1, arrival=26, duration=18, vms=10, cores=4),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, apps, bytes_per_core=1e9,
            utilization_cap=0.9,
        )
        scheduler = MIPScheduler(decompose="window:24")
        scheduler.schedule(problem)
        t = scheduler.last_timings
        assert t.windows[1].warm_start_used is True

    def test_decomposed_forces_inner_warm_start(self):
        """Even without highspy the windowed path requests chaining —
        it is opportunistic and must not change results."""
        problem = separable_problem()
        cold = MIPScheduler(decompose="window:24", warm_start=False)
        placement = cold.schedule(problem)
        placement.validate_complete(problem)
