"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_sites_lists_catalog(capsys):
    assert main(["sites"]) == 0
    out = capsys.readouterr().out
    assert "NO-solar" in out
    assert "UK-wind" in out


def test_synthesize_writes_csv(tmp_path, capsys):
    code = main(
        [
            "synthesize", "--sites", "UK-wind", "BE-solar",
            "--days", "2", "--out", str(tmp_path), "--seed", "3",
        ]
    )
    assert code == 0
    assert (tmp_path / "UK-wind.csv").exists()
    assert (tmp_path / "BE-solar.csv").exists()
    from repro.traces import trace_from_csv

    trace = trace_from_csv(tmp_path / "UK-wind.csv")
    assert len(trace) == 2 * 96


def test_variability_report(capsys):
    code = main(
        [
            "variability", "--sites", "NO-solar", "UK-wind",
            "--days", "6", "--seed", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "NO-solar+UK-wind" in out
    assert "Stable energy" in out


def test_simulate_report(capsys):
    code = main(
        ["simulate", "--kind", "wind", "--days", "3", "--seed", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "out-migration GB" in out
    assert "silent power changes" in out


def test_forecast_report(capsys):
    code = main(
        ["forecast", "--kind", "solar", "--days", "20", "--seed", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "3h" in out and "MAPE" in out


@pytest.mark.slow
def test_schedule_report(capsys):
    code = main(
        ["schedule", "--days", "3", "--apps", "40", "--seed", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Greedy" in out and "MIP-peak" in out


@pytest.mark.slow
def test_schedule_decomposed(capsys):
    code = main(
        ["schedule", "--days", "2", "--apps", "25", "--seed", "5",
         "--decompose", "window:24"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Greedy" in out and "MIP-peak" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["warp-drive"])


def test_missing_required_argument():
    with pytest.raises(SystemExit):
        main(["synthesize", "--out", "/tmp/x"])  # --sites missing


def test_sweep_simulate_grid(tmp_path, capsys):
    code = main(
        [
            "sweep", "--mode", "simulate", "--sites", "BE-wind",
            "--days", "2", "--seeds", "0", "1",
            "--jobs", "1", "--backend", "serial",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest-dir", str(tmp_path / "manifests"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 scenarios" in out
    assert "backend=serial" in out
    assert "sweep-simulate-BE-wind-d2-s0-u0.7" in out
    assert "sweep-simulate-BE-wind-d2-s1-u0.7" in out
    assert "fleet manifest:" in out
    fleets = list((tmp_path / "manifests").glob("fleet_*.json"))
    assert len(fleets) == 1
    from repro.experiments import FleetManifest

    fleet = FleetManifest.read(fleets[0])
    assert fleet.backend == "serial"
    assert len(fleet.tasks) == 2
    # Per-scenario manifests land next to the fleet summary.
    assert (
        len(list((tmp_path / "manifests").glob("manifest_sweep-*.json")))
        == 2
    )
