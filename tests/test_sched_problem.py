"""Tests for scheduling problem containers and the overhead model."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.forecast import NoisyOracleForecaster
from repro.sched import (
    Placement,
    SchedulingProblem,
    SiteCapacity,
    displaced_stable_cores,
    evaluate_placement_overhead,
    migration_series_from_displacement,
    placement_load_series,
    problem_from_forecasts,
)
from repro.sched.problem import default_bytes_per_core
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import Application, VMType

START = datetime(2020, 5, 1)


def make_grid(n=24):
    return TimeGrid(START, timedelta(hours=1), n)


def make_app(app_id=0, arrival=0, duration=24, vms=10, cores=2,
             memory=8.0, stable=0.5):
    return Application(
        app_id, arrival, duration, vms, VMType(f"T{cores}", cores, memory),
        stable,
    )


def make_site(name="a", total=1000, capacity=None, n=24):
    if capacity is None:
        capacity = np.full(n, 800.0)
    return SiteCapacity(name, total, capacity)


def make_problem(n=24, sites=None, apps=None, **kwargs):
    sites = sites or (make_site("a", n=n), make_site("b", n=n))
    apps = apps or (make_app(duration=n),)
    return SchedulingProblem(
        make_grid(n), tuple(sites), tuple(apps),
        kwargs.pop("bytes_per_core", 4 * 2**30), **kwargs,
    )


class TestContainers:
    def test_site_capacity_validation(self):
        with pytest.raises(SchedulingError):
            SiteCapacity("a", 0, np.ones(4))
        with pytest.raises(SchedulingError):
            SiteCapacity("a", 10, np.full(4, 20.0))
        with pytest.raises(SchedulingError):
            SiteCapacity("a", 10, -np.ones(4))
        with pytest.raises(SchedulingError):
            SiteCapacity("a", 10, np.ones((2, 2)))

    def test_problem_validation(self):
        grid = make_grid(24)
        site = make_site()
        app = make_app()
        with pytest.raises(SchedulingError):
            SchedulingProblem(grid, (), (app,), 1.0)
        with pytest.raises(SchedulingError):
            SchedulingProblem(grid, (site,), (), 1.0)
        with pytest.raises(SchedulingError):
            SchedulingProblem(grid, (site, site), (app,), 1.0)  # dup name
        with pytest.raises(SchedulingError):
            SchedulingProblem(grid, (site,), (app,), -1.0)
        with pytest.raises(SchedulingError):
            SchedulingProblem(grid, (site,), (app,), 1.0,
                              utilization_cap=0.0)

    def test_capacity_length_must_match_grid(self):
        with pytest.raises(SchedulingError):
            SchedulingProblem(
                make_grid(24), (make_site(n=10),), (make_app(),), 1.0
            )

    def test_app_past_horizon_rejected(self):
        with pytest.raises(SchedulingError):
            make_problem(apps=(make_app(arrival=20, duration=10),))

    def test_activity_matrix(self):
        problem = make_problem(
            apps=(make_app(0, arrival=2, duration=3, vms=1),)
        )
        active = problem.activity_matrix()
        assert active.shape == (1, 24)
        assert list(np.flatnonzero(active[0])) == [2, 3, 4]

    def test_total_demand(self):
        problem = make_problem(
            apps=(make_app(0, vms=10, cores=2), make_app(1, vms=5, cores=4))
        )
        assert problem.total_demand_cores() == 40

    def test_default_bytes_per_core(self):
        apps = [make_app(cores=2, memory=8.0), make_app(1, cores=4,
                                                        memory=16.0)]
        # Memory/core = 4 GiB everywhere.
        assert default_bytes_per_core(apps) == pytest.approx(4 * 2**30)

    def test_placement_validation(self):
        problem = make_problem(apps=(make_app(0, vms=10),))
        good = Placement({0: {"a": 4, "b": 6}})
        good.validate_complete(problem)
        with pytest.raises(SchedulingError):
            Placement({0: {"a": 4}}).validate_complete(problem)
        with pytest.raises(SchedulingError):
            Placement({0: {"a": 4, "zz": 6}}).validate_complete(problem)
        with pytest.raises(SchedulingError):
            Placement({0: {"a": 14, "b": -4}}).validate_complete(problem)


class TestOverheadModel:
    def test_load_series(self):
        app = make_app(0, arrival=2, duration=4, vms=10, cores=2, stable=0.5)
        problem = make_problem(apps=(app,))
        placement = Placement({0: {"a": 6, "b": 4}})
        stable, total = placement_load_series(problem, placement)
        assert stable["a"][2] == pytest.approx(6 * 2 * 0.5)
        assert total["a"][2] == pytest.approx(12)
        assert total["b"][3] == pytest.approx(8)
        assert total["a"][1] == 0.0 and total["a"][6] == 0.0

    def test_displaced_cores_formula(self):
        load = np.array([10.0, 10.0, 10.0])
        capacity = np.array([12.0, 8.0, 0.0])
        np.testing.assert_allclose(
            displaced_stable_cores(load, capacity), [0.0, 2.0, 10.0]
        )

    def test_displaced_shape_mismatch(self):
        with pytest.raises(SchedulingError):
            displaced_stable_cores(np.zeros(3), np.zeros(4))

    def test_migration_series_directions(self):
        displaced = np.array([0.0, 5.0, 5.0, 2.0, 0.0])
        out_bytes, in_bytes = migration_series_from_displacement(
            displaced, 2.0
        )
        np.testing.assert_allclose(out_bytes, [0, 10, 0, 0, 0])
        np.testing.assert_allclose(in_bytes, [0, 0, 0, 6, 4])

    def test_migration_series_initial_displacement(self):
        out_bytes, in_bytes = migration_series_from_displacement(
            np.array([3.0]), 1.0
        )
        assert out_bytes[0] == 3.0

    def test_migration_series_validation(self):
        with pytest.raises(SchedulingError):
            migration_series_from_displacement(np.zeros(3), 0.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_total_traffic_bounds_displacement_range(self, values):
        displaced = np.array(values)
        out_bytes, in_bytes = migration_series_from_displacement(
            displaced, 1.0
        )
        # Conservation: out - in == final displacement level.
        assert out_bytes.sum() - in_bytes.sum() == pytest.approx(
            displaced[-1]
        )
        # Total traffic at least the largest swing.
        assert out_bytes.sum() >= displaced.max() - 1e-9

    def test_evaluate_overhead_zero_when_capacity_ample(self):
        problem = make_problem(apps=(make_app(0, vms=10, duration=24),))
        placement = Placement({0: {"a": 10, "b": 0}})
        overhead = evaluate_placement_overhead(problem, placement)
        assert overhead["a"].sum() == 0.0
        assert overhead["b"].sum() == 0.0

    def test_evaluate_overhead_dip_roundtrip(self):
        # Capacity dips below stable load mid-horizon: traffic out then
        # back in, each half the total.
        n = 6
        capacity = np.array([100, 100, 0, 0, 100, 100], dtype=float)
        site = make_site("a", 1000, capacity, n)
        app = make_app(0, 0, n, vms=10, cores=2, stable=1.0)
        problem = SchedulingProblem(
            make_grid(n), (site,), (app,), bytes_per_core=1.0
        )
        placement = Placement({0: {"a": 10}})
        overhead = evaluate_placement_overhead(problem, placement)
        # 20 stable cores displaced at step 2, return at step 4.
        assert overhead["a"][2] == pytest.approx(20.0)
        assert overhead["a"][4] == pytest.approx(20.0)
        assert overhead["a"].sum() == pytest.approx(40.0)

    def test_evaluate_with_external_capacity(self):
        problem = make_problem(apps=(make_app(0, vms=10, stable=1.0),))
        placement = Placement({0: {"a": 10, "b": 0}})
        tight = {"a": np.zeros(24), "b": np.zeros(24)}
        overhead = evaluate_placement_overhead(problem, placement, tight)
        assert overhead["a"][0] > 0  # immediately displaced

    def test_degradable_absorbs_for_free(self):
        # All-degradable app: capacity dip produces zero traffic.
        n = 4
        capacity = np.array([100, 0, 0, 100], dtype=float)
        site = make_site("a", 1000, capacity, n)
        app = make_app(0, 0, n, vms=10, cores=2, stable=0.0)
        problem = SchedulingProblem(
            make_grid(n), (site,), (app,), bytes_per_core=1.0
        )
        overhead = evaluate_placement_overhead(
            problem, Placement({0: {"a": 10}})
        )
        assert overhead["a"].sum() == 0.0


class TestProblemFromForecasts:
    def test_builds_capacity_from_forecast(self):
        grid = make_grid(24)
        values = np.full(24, 0.5)
        trace = PowerTrace(grid, values, "s1", "wind", 400.0)
        problem = problem_from_forecasts(
            grid, {"s1": trace}, {"s1": 1000},
            [make_app(duration=24)], NoisyOracleForecaster(seed=1),
        )
        site = problem.sites[0]
        assert site.total_cores == 1000
        assert np.all(site.capacity_cores <= 1000)
        # Forecast of a 0.5 trace stays in a plausible band.
        assert 200 < site.capacity_cores.mean() < 800
