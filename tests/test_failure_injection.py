"""Failure injection: pathological inputs must degrade gracefully.

Every scenario here is something a careless (or adversarial) caller
could feed the library: blackout traces, flapping power, oversized
VMs, starved solvers, unfinishable transfers.  The contract is no
crashes, no hangs, no silent corruption — either a clean result or a
typed error.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    EventKind,
    ServerSpec,
)
from repro.errors import ReproError, SolverError
from repro.forecast import NoisyOracleForecaster
from repro.sched import (
    GreedyScheduler,
    MIPScheduler,
    SchedulingProblem,
    SiteCapacity,
)
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.wan import MigrationFlow, WanSimulator, WanTopology
from repro.workload import Application, VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)


def trace_of(values):
    grid = TimeGrid(START, timedelta(minutes=15), len(values))
    return PowerTrace(grid, np.array(values, float), "t", "wind")


def request(vm_id, arrival=0, lifetime=4, cores=2):
    return VMRequest(
        vm_id, arrival, lifetime, VMType(f"T{cores}", cores, cores * 4.0),
        VMClass.STABLE,
    )


class TestDatacenterUnderPathology:
    def _config(self, **overrides):
        defaults = dict(
            cluster=ClusterSpec(n_servers=3, server=ServerSpec(cores=8)),
            queue_patience_steps=4,
        )
        defaults.update(overrides)
        return DatacenterConfig(**defaults)

    def test_total_blackout(self):
        dc = Datacenter(self._config(), trace_of([0.0] * 10))
        result = dc.run([request(i) for i in range(5)])
        # Nothing ever runs; everything queues then expires.
        assert result.events.count(EventKind.ADMIT) == 0
        assert result.events.count(EventKind.QUEUE) == 5
        assert result.events.count(EventKind.REJECT) == 5
        assert result.out_bytes_series().sum() == 0.0

    def test_power_flapping_every_step(self):
        values = [1.0, 0.0] * 20
        dc = Datacenter(
            self._config(admission_utilization=1.0), trace_of(values)
        )
        result = dc.run([request(i, lifetime=30) for i in range(6)])
        # Invariants hold through the churn.
        for record in result.records:
            assert record.running_cores <= record.core_budget
            assert record.running_cores >= 0
        # Every zero-power step has zero running cores.
        for record in result.records:
            if record.norm_power == 0.0:
                assert record.running_cores == 0

    def test_vm_larger_than_any_server(self):
        dc = Datacenter(self._config(), trace_of([1.0] * 8))
        giant = request(0, cores=32)  # servers have 8 cores
        result = dc.run([giant])
        # Queued, never placed, expires; no infinite loop.
        assert result.events.count(EventKind.ADMIT) == 0
        assert result.events.count(EventKind.REJECT) == 1

    def test_zero_length_trace(self):
        dc = Datacenter(self._config(), trace_of([]))
        result = dc.run([request(0)])
        assert result.records == []

    def test_arrival_flood(self):
        # 100x more VMs than the cluster can ever hold.
        dc = Datacenter(self._config(), trace_of([1.0] * 12))
        result = dc.run([request(i, lifetime=12) for i in range(300)])
        total_cores = 3 * 8
        for record in result.records:
            assert record.allocated_cores <= total_cores


class TestSolverStarvation:
    def _problem(self, n_apps=40):
        n = 48
        sites = (
            SiteCapacity("a", 2000, np.full(n, 1500.0)),
            SiteCapacity("b", 2000, np.full(n, 1200.0)),
        )
        apps = tuple(
            Application(
                i, 0, n, 10, VMType("T4", 4, 16.0), 0.5
            )
            for i in range(n_apps)
        )
        grid = TimeGrid(START, timedelta(hours=1), n)
        return SchedulingProblem(grid, sites, apps, 4 * 2**30)

    def test_tiny_time_limit_still_returns_or_raises_cleanly(self):
        problem = self._problem()
        scheduler = MIPScheduler(time_limit_s=0.05)
        try:
            placement = scheduler.schedule(problem)
        except SolverError:
            return  # clean failure is acceptable
        placement.validate_complete(problem)

    def test_infeasible_demand_raises_typed_error(self):
        n = 4
        sites = (SiteCapacity("a", 10, np.full(n, 10.0)),)
        apps = (
            Application(0, 0, n, 100, VMType("T4", 4, 16.0), 0.5),
        )
        grid = TimeGrid(START, timedelta(hours=1), n)
        problem = SchedulingProblem(grid, sites, apps, 1.0)
        with pytest.raises(ReproError):
            MIPScheduler().schedule(problem)
        with pytest.raises(ReproError):
            GreedyScheduler().schedule(problem)


class TestForecasterPathology:
    def test_all_zero_trace_forecasts_zero(self):
        trace = trace_of([0.0] * 96)
        forecast = NoisyOracleForecaster(seed=1).forecast(trace, 0, 96)
        assert np.all(forecast.values == 0.0)

    def test_full_power_trace_stays_bounded(self):
        trace = trace_of([1.0] * 96)
        forecast = NoisyOracleForecaster(seed=1).forecast(trace, 0, 96)
        assert forecast.values.max() <= 1.0


class TestWanPathology:
    def test_flow_that_can_never_finish(self):
        topology = WanTopology(("a", "b"), access_gbps=1.0)
        simulator = WanSimulator(topology, 900.0)
        huge = MigrationFlow(0, "a", "b", 1e18, 0)
        results = simulator.run([huge], horizon_seconds=10.0)
        assert not results[0].completed

    def test_many_tiny_flows_terminate(self):
        topology = WanTopology(("a", "b", "c"), access_gbps=10.0)
        simulator = WanSimulator(topology, 900.0)
        flows = [
            MigrationFlow(i, "a" if i % 2 else "b", "c", 1e6, i % 5)
            for i in range(200)
        ]
        results = simulator.run(flows)
        assert all(r.completed for r in results)

    def test_simultaneous_release_burst(self):
        topology = WanTopology(("a", "b"), access_gbps=10.0)
        simulator = WanSimulator(topology, 900.0)
        flows = [
            MigrationFlow(i, "a", "b", 1e9, 0) for i in range(50)
        ]
        results = simulator.run(flows)
        assert all(r.completed for r in results)
        # Fair sharing: all finish at the same time (equal sizes).
        finishes = {round(r.finish_seconds, 6) for r in results}
        assert len(finishes) == 1
