"""Golden tests for resumable sessions (repro.serve.session).

The load-bearing guarantee: a run advanced in bounded segments —
interrupted, checkpointed, restored (same process or another one),
forked — produces columns, event logs, and supply telemetry
bit-identical to one uninterrupted ``Datacenter.run`` / fleet run.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from tests.test_fleet import (
    assert_identical,
    battery_grid_stack,
    battery_stack,
    make_site,
    mixed_fleet,
    reference_run,
)

from repro.errors import SessionError
from repro.serve import SessionRegistry, SimSession
from repro.supply import SupplyStack
from repro.supply.components import BatteryDispatch, PricedGridPower

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def session_run(site, engine, chunk):
    session = SimSession(site, engine=engine)
    while not session.done:
        session.advance(chunk)
    return session.results()[site.name]


class TestSegmentedAdvance:
    """advance(n) in any segmentation == one uninterrupted run."""

    @pytest.mark.parametrize("engine", ["event", "soa"])
    @pytest.mark.parametrize(
        "mode,stack",
        [
            ("open", None),
            ("open", "battery"),
            ("closed", "battery_grid"),
        ],
    )
    def test_chunked_advance_golden(self, engine, mode, stack):
        supply = {
            None: None,
            "battery": battery_stack(),
            "battery_grid": battery_grid_stack(),
        }[stack]
        site = make_site(3, 1500, 400, supply=supply, supply_mode=mode)
        want = reference_run(site, engine=engine)
        for chunk in (1, 137, 5000):
            got = session_run(site, engine, chunk)
            assert_identical(
                f"{engine}/{mode}/{stack}/chunk={chunk}",
                got, want, events=True,
            )

    def test_zero_and_overshoot_advance(self):
        site = make_site(2, 600, 150)
        session = SimSession(site)
        session.advance(0)
        assert session.step == 0
        session.advance(10**9)
        assert session.done
        with pytest.raises(SessionError):
            session.advance(-1)

    def test_status_projection_converges(self):
        site = make_site(4, 800, 200, supply=battery_grid_stack(),
                         supply_mode="closed")
        want = reference_run(site)
        session = SimSession(site)
        session.advance(300)
        status = session.status()
        entry = status["sites"][site.name]
        assert entry["step"] == 300
        assert "battery_soc_mwh" in entry
        assert set(entry["summary"]) == set(want.summary_dict())
        session.run_to_end()
        final = session.status()
        assert final["done"] and final["progress"] == 1.0
        assert (
            final["sites"][site.name]["summary"] == want.summary_dict()
        )


class TestCheckpointRestore:
    """Serialized mid-flight state resumes bit-identically."""

    @pytest.mark.parametrize("engine", ["event", "soa"])
    def test_checkpoint_restore_fork_golden(self, engine):
        site = make_site(
            5, 1500, 400, supply=battery_grid_stack(),
            supply_mode="closed",
        )
        want = reference_run(site, engine=engine)
        session = SimSession(site, engine=engine)
        session.advance(533)
        blob = session.checkpoint()

        restored = SimSession.restore(blob)
        restored.run_to_end()
        assert_identical(
            "restored", restored.results()[site.name], want, events=True
        )

        fork = session.fork()
        fork.run_to_end()
        assert_identical(
            "fork", fork.results()[site.name], want, events=True
        )
        # The original is untouched by both and still finishes golden.
        session.run_to_end()
        assert_identical(
            "original", session.results()[site.name], want, events=True
        )

    def test_mid_wake_chain_checkpoints(self):
        """Checkpoints dropped at arbitrary (even single-step) cut
        points — including inside dense wake chains — all resume
        golden."""
        site = make_site(
            6, 700, 300, supply=battery_stack(), supply_mode="closed"
        )
        want = reference_run(site)
        session = SimSession(site)
        for cut in (1, 2, 3, 97, 251, 252, 600):
            session.advance(cut - session.step)
            resumed = SimSession.restore(session.checkpoint())
            resumed.run_to_end()
            assert_identical(
                f"cut@{cut}", resumed.results()[site.name], want,
                events=True,
            )

    def test_restore_into_different_process(self, tmp_path):
        site = make_site(7, 900, 250, supply=battery_grid_stack(),
                         supply_mode="closed")
        want = reference_run(site)
        session = SimSession(site)
        session.advance(400)
        blob_path = tmp_path / "session.ckpt"
        blob_path.write_bytes(session.checkpoint())
        out_path = tmp_path / "columns.npz"
        script = (
            "import sys, numpy as np\n"
            f"sys.path.insert(0, {REPO_SRC!r})\n"
            "from repro.serve import SimSession\n"
            f"session = SimSession.restore(open({str(blob_path)!r}, 'rb').read())\n"
            "session.run_to_end()\n"
            "result = next(iter(session.results().values()))\n"
            "np.savez(\n"
            f"    {str(out_path)!r},\n"
            "    running=result.columns.running_cores,\n"
            "    queue=result.columns.queue_length,\n"
            "    out_bytes=result.columns.out_bytes,\n"
            "    soc=np.asarray(result.supply.soc_mwh),\n"
            ")\n"
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, timeout=300
        )
        got = np.load(out_path)
        np.testing.assert_array_equal(
            got["running"], want.columns.running_cores
        )
        np.testing.assert_array_equal(
            got["queue"], want.columns.queue_length
        )
        np.testing.assert_array_equal(
            got["out_bytes"], want.columns.out_bytes
        )
        np.testing.assert_array_equal(
            got["soc"], np.asarray(want.supply.soc_mwh)
        )

    def test_bad_blobs_rejected(self):
        with pytest.raises(SessionError):
            SimSession.restore(b"not a pickle")
        with pytest.raises(SessionError):
            SimSession.restore(pickle.dumps({"format": "other/9"}))
        with pytest.raises(SessionError):
            SimSession.restore(pickle.dumps([1, 2, 3]))


class TestMultiSite:
    """Lockstep sessions over heterogeneous fleets."""

    def test_mixed_fleet_session_golden(self):
        sites = mixed_fleet()
        session = SimSession(sites, engine="event")
        session.advance(800)
        resumed = SimSession.restore(session.checkpoint())
        resumed.run_to_end()
        results = resumed.results()
        for site in sites:
            assert_identical(
                f"fleet:{site.name}",
                results[site.name],
                reference_run(site),
                events=True,
            )

    def test_year_fleet_checkpoint_restore_golden(self):
        """The acceptance bar: an 8-site year-long fleet, interrupted
        mid-run, checkpointed, restored, and advanced to the end —
        golden-identical to uninterrupted per-site runs."""
        sites = [
            make_site(
                20 + i, 35040, 400,
                supply=battery_grid_stack() if i % 2 == 0 else None,
                supply_mode="closed" if i % 2 == 0 else "open",
                name=f"yr-{i}",
            )
            for i in range(8)
        ]
        session = SimSession(sites, engine="event")
        session.advance(9000)
        resumed = SimSession.restore(session.checkpoint())
        resumed.advance(11000)
        resumed.run_to_end()
        results = resumed.results()
        for site in sites:
            assert_identical(
                f"year:{site.name}",
                results[site.name],
                reference_run(site),
                events=True,
            )

    def test_shorter_sites_finish_early(self):
        sites = [
            make_site(11, 400, 100, name="short"),
            make_site(12, 900, 200, name="long"),
        ]
        session = SimSession(sites)
        session.advance(600)
        status = session.status()
        assert status["sites"]["short"]["step"] == 400
        assert status["sites"]["long"]["step"] == 600
        assert not session.done
        session.run_to_end()
        for site in sites:
            assert_identical(
                site.name,
                session.results()[site.name],
                reference_run(site),
                events=True,
            )

    def test_duplicate_names_rejected(self):
        site = make_site(1, 100, 10, name="twin")
        with pytest.raises(SessionError):
            SimSession([site, site])
        with pytest.raises(SessionError):
            SimSession([])
        with pytest.raises(SessionError):
            SimSession(site, engine="warp")


class TestInjections:
    """Perturbations queue, apply at the next tick, and are audited."""

    def test_battery_soc_and_grid_budget(self):
        site = make_site(
            8, 800, 200, supply=battery_grid_stack(),
            supply_mode="closed",
        )
        session = SimSession(site)
        session.advance(100)
        session.inject({"kind": "battery_soc", "soc_fraction": 1.0})
        session.inject({"kind": "grid_budget", "remaining_mwh": 0.0})
        assert session.status()["pending_injections"] == 2
        session.advance(1)
        dispatcher = session._sites[0].state.dispatcher
        # Capacity 2.5 MWh (battery_grid_stack); one 15-min step can
        # discharge at most max_power * h / efficiency ≈ 0.42 MWh from
        # the injected full charge, and can never charge above it.
        assert 2.0 <= dispatcher.battery_soc_mwh() <= 2.5
        grid_state = dispatcher.states[1]
        assert grid_state.remaining_mwh == 0.0
        events = [e["event"] for e in session.audit_tail()]
        assert events.count("apply") == 2

    def test_blackout_starves_site(self):
        site = make_site(9, 600, 200)
        session = SimSession(site)
        session.advance(200)
        session.inject(
            {"kind": "blackout", "site": site.name, "duration_steps": 50}
        )
        session.advance(50)
        cols = session._sites[0].state.cols
        assert np.all(cols.norm_power[200:250] == 0.0)
        assert np.all(cols.running_cores[200:250] == 0)
        session.run_to_end()
        assert session.done

    def test_blackout_closed_loop_recomputes(self):
        site = make_site(
            10, 600, 200, supply=battery_grid_stack(),
            supply_mode="closed",
        )
        session = SimSession(site)
        session.advance(150)
        session.inject(
            {"kind": "blackout", "site": site.name, "duration_steps": 40}
        )
        session.advance(40)
        values = session._sites[0].dc.power_trace.values
        assert np.all(values[150:190] == 0.0)
        session.run_to_end()
        assert session.done

    def test_invalid_injections_rejected(self):
        session = SimSession(make_site(1, 100, 10))
        with pytest.raises(SessionError):
            session.inject({"kind": "earthquake"})
        with pytest.raises(SessionError):
            session.inject({"kind": "blackout", "site": "atlantis"})
        with pytest.raises(SessionError):
            session.inject({"kind": "battery_soc"})
        with pytest.raises(SessionError):
            session.inject({"kind": "grid_budget"})
        with pytest.raises(SessionError):
            session.inject({"kind": "spot_price"})
        with pytest.raises(SessionError):
            session.inject("blackout")
        with pytest.raises(SessionError):
            session.results()


def priced_grid_stack(n: int, policy: str = "threshold") -> SupplyStack:
    """A battery plus a threshold-priced grid: cheap steps buy, a
    3x price spike crosses the 80 $/MWh cap and purchases stop."""
    return SupplyStack(
        components=(
            BatteryDispatch(
                capacity_mwh=2.5, max_power_mw=1.5, efficiency=0.9
            ),
            PricedGridPower(
                budget_mwh=300.0,
                max_power_mw=1.0,
                price_per_mwh=np.full(n, 50.0),
                carbon_per_mwh=np.full(n, 200.0),
                policy=policy,
                price_threshold=80.0,
            ),
        )
    )


class TestGridSupplyInjections:
    """Injections against grid-backed closed-loop supply stacks."""

    def test_blackout_rides_on_the_grid(self):
        """A blacked-out site with a firm grid keeps partial power —
        unlike the starved no-supply blackout — and the outage MWh
        show up as grid imports."""
        site = make_site(
            12, 600, 200, supply=battery_grid_stack(),
            supply_mode="closed",
        )
        session = SimSession(site)
        session.advance(150)
        se = session._sites[0]
        imported_before = se.state.dispatcher.evaluation.grid_import_mwh[
            :150
        ].sum()
        session.inject(
            {"kind": "blackout", "site": site.name, "duration_steps": 60}
        )
        session.advance(60)
        ev = se.state.dispatcher.evaluation
        assert np.all(se.dc.power_trace.values[150:210] == 0.0)
        # The grid firms the outage in-loop...
        assert ev.grid_import_mwh[150:210].sum() > 0.0
        # ...and powers cores a supply-less blackout would starve.
        assert se.state.cols.core_budget[150:210].max() > 0
        session.run_to_end()
        total = ev.grid_import_mwh.sum()
        assert total > imported_before
        assert total <= 300.0 + 1e-9

    def test_spot_price_shock_halts_threshold_buys(self):
        n = 600
        site = make_site(
            13, n, 200, supply=priced_grid_stack(n),
            supply_mode="closed",
        )
        session = SimSession(site)
        session.advance(150)
        control = session.fork("control")
        session.inject({"kind": "spot_price", "scale": 3.0,
                        "duration_steps": 100})
        session.advance(100)
        control.advance(100)
        shocked_ev = session._sites[0].state.dispatcher.evaluation
        control_ev = control._sites[0].state.dispatcher.evaluation
        window = slice(150, 250)
        # 150 $/MWh > the 80 $/MWh cap: no purchases in the window.
        assert shocked_ev.grid_import_mwh[window].sum() == 0.0
        assert shocked_ev.cost_usd[window].sum() == 0.0
        assert control_ev.grid_import_mwh[window].sum() > 0.0
        # Identical histories before the shock.
        np.testing.assert_array_equal(
            shocked_ev.grid_import_mwh[:150],
            control_ev.grid_import_mwh[:150],
        )
        status = session.status()["sites"][site.name]
        assert "grid_cost_usd" in status
        assert status["grid_cost_usd"] == pytest.approx(
            shocked_ev.cost_usd.sum()
        )
        events = [e["event"] for e in session.audit_tail()]
        assert "apply" in events

    def test_spot_price_shock_checkpoint_round_trip(self):
        """A shocked session checkpoints/restores bit-identically."""
        n = 600
        site = make_site(
            14, n, 200, supply=priced_grid_stack(n),
            supply_mode="closed",
        )
        session = SimSession(site)
        session.advance(100)
        session.inject({"kind": "spot_price", "delta_per_mwh": 200.0,
                        "duration_steps": 50})
        session.advance(10)
        clone = SimSession.restore(session.checkpoint())
        session.run_to_end()
        clone.run_to_end()
        ours = session._sites[0].state.dispatcher.evaluation
        theirs = clone._sites[0].state.dispatcher.evaluation
        for name in ("delivered", "grid_import_mwh", "cost_usd",
                     "carbon_kg"):
            np.testing.assert_array_equal(
                getattr(ours, name), getattr(theirs, name),
                err_msg=name,
            )


class TestRegistry:
    """The session map behind the HTTP layer."""

    def test_lifecycle(self):
        registry = SessionRegistry()
        site = make_site(1, 300, 80)
        session = registry.create(site)
        assert registry.get(session.session_id) is session
        assert registry.ids() == [session.session_id]

        fork = registry.fork(session.session_id)
        assert fork.session_id != session.session_id
        assert len(registry) == 2

        restored = registry.restore(session.checkpoint(), "named")
        assert restored.session_id == "named"
        with pytest.raises(SessionError):
            registry.restore(session.checkpoint(), "named")

        registry.delete(fork.session_id)
        with pytest.raises(SessionError):
            registry.get(fork.session_id)
        with pytest.raises(SessionError):
            registry.delete(fork.session_id)
        assert sorted(registry.ids()) == sorted(
            [session.session_id, "named"]
        )

    def test_failed_create_releases_id(self):
        registry = SessionRegistry()
        with pytest.raises(SessionError):
            registry.create([], session_id="dud")
        site = make_site(2, 100, 10)
        assert registry.create(site, session_id="dud").session_id == "dud"
