"""Tests for the workload subpackage."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.units import grid_days
from repro.workload import (
    Application,
    AzureWorkloadConfig,
    VMClass,
    VMRequest,
    VMType,
    arrival_rate_for_utilization,
    default_vm_catalog,
    generate_applications,
    generate_vm_requests,
    workload_matched_to_power,
)


class TestVMTypes:
    def test_catalog_probabilities_sum_to_one(self):
        assert sum(p for _, p in default_vm_catalog()) == pytest.approx(1.0)

    def test_catalog_skewed_small(self):
        small = sum(p for t, p in default_vm_catalog() if t.cores <= 2)
        assert small > 0.6

    def test_vm_type_validation(self):
        with pytest.raises(ConfigurationError):
            VMType("bad", 0, 4.0)
        with pytest.raises(ConfigurationError):
            VMType("bad", 2, 0.0)

    def test_memory_bytes_binary(self):
        assert VMType("D4", 4, 16.0).memory_bytes == 16 * 2**30

    def test_request_validation(self):
        vm_type = VMType("B1", 1, 4.0)
        with pytest.raises(ConfigurationError):
            VMRequest(0, -1, 10, vm_type, VMClass.STABLE)
        with pytest.raises(ConfigurationError):
            VMRequest(0, 0, 0, vm_type, VMClass.STABLE)

    def test_request_accessors(self):
        vm_type = VMType("D8", 8, 32.0)
        request = VMRequest(7, 5, 10, vm_type, VMClass.DEGRADABLE)
        assert request.cores == 8
        assert request.memory_bytes == 32 * 2**30
        assert request.departure_step == 15


class TestAzureWorkload:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AzureWorkloadConfig(target_utilization=0.0)
        with pytest.raises(ConfigurationError):
            AzureWorkloadConfig(total_cores=0)
        with pytest.raises(ConfigurationError):
            AzureWorkloadConfig(mean_lifetime_hours=0.0)
        with pytest.raises(ConfigurationError):
            AzureWorkloadConfig(stable_fraction=1.5)
        with pytest.raises(ConfigurationError):
            AzureWorkloadConfig(diurnal_amplitude=1.0)

    def test_bad_catalog_rejected(self):
        bad = ((VMType("B1", 1, 4.0), 0.5),)
        with pytest.raises(ConfigurationError):
            AzureWorkloadConfig(catalog=bad)

    def test_arrival_rate_littles_law(self):
        config = AzureWorkloadConfig(
            target_utilization=0.7, total_cores=28000,
            mean_lifetime_hours=24.0,
        )
        rate = arrival_rate_for_utilization(config, step_hours=0.25)
        # rate * lifetime_steps * mean_cores == target cores.
        occupied = rate * (24.0 / 0.25) * config.mean_cores_per_vm
        assert occupied == pytest.approx(0.7 * 28000)

    def test_arrival_rate_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            arrival_rate_for_utilization(AzureWorkloadConfig(), 0.0)

    def test_generate_deterministic(self, week_grid):
        a = generate_vm_requests(week_grid, seed=5)
        b = generate_vm_requests(week_grid, seed=5)
        assert len(a) == len(b)
        assert all(
            x.vm_id == y.vm_id and x.arrival_step == y.arrival_step
            for x, y in zip(a, b)
        )

    def test_generate_sorted_and_dense_ids(self, week_grid):
        requests = generate_vm_requests(week_grid, seed=5)
        steps = [r.arrival_step for r in requests]
        assert steps == sorted(steps)
        assert sorted(r.vm_id for r in requests) == list(range(len(requests)))

    def test_generate_arrivals_within_grid(self, week_grid):
        requests = generate_vm_requests(week_grid, seed=5)
        assert all(0 <= r.arrival_step < week_grid.n for r in requests)

    def test_warm_start_populates_step_zero(self, week_grid):
        warm = generate_vm_requests(week_grid, seed=5, warm_start=True)
        cold = generate_vm_requests(week_grid, seed=5, warm_start=False)
        warm_zero = sum(1 for r in warm if r.arrival_step == 0)
        cold_zero = sum(1 for r in cold if r.arrival_step == 0)
        assert warm_zero > cold_zero + 100

    def test_steady_state_utilization_near_target(self):
        # Run Little's law forward: count core-steps demanded.
        grid = grid_days(datetime(2020, 5, 1), 14)
        config = AzureWorkloadConfig(
            target_utilization=0.5, total_cores=10000,
            diurnal_amplitude=0.0,
        )
        requests = generate_vm_requests(grid, config, seed=9)
        occupancy = np.zeros(grid.n)
        for request in requests:
            end = min(grid.n, request.departure_step)
            occupancy[request.arrival_step : end] += request.cores
        # Skip the first 2 days of residual warm-up noise.
        mean_util = occupancy[192:].mean() / config.total_cores
        assert mean_util == pytest.approx(0.5, rel=0.15)

    def test_stable_fraction_respected(self, week_grid):
        config = AzureWorkloadConfig(stable_fraction=0.8)
        requests = generate_vm_requests(week_grid, config, seed=5)
        stable = sum(1 for r in requests if r.vm_class is VMClass.STABLE)
        assert stable / len(requests) == pytest.approx(0.8, abs=0.05)

    def test_matched_workload_scales_demand(self):
        matched = workload_matched_to_power(0.3, 28000, 0.7)
        assert matched.target_utilization == pytest.approx(0.21)
        assert matched.total_cores == 28000

    def test_matched_workload_validation(self):
        with pytest.raises(ConfigurationError):
            workload_matched_to_power(0.0, 28000)

    def test_lifetimes_heavy_tailed(self, month_grid):
        requests = generate_vm_requests(month_grid, seed=5)
        lifetimes = np.array([r.lifetime_steps for r in requests])
        # Median well below mean is the log-normal signature.
        assert np.median(lifetimes) < 0.6 * lifetimes.mean()


class TestApplications:
    def test_application_validation(self):
        vm_type = VMType("B2", 2, 8.0)
        with pytest.raises(ConfigurationError):
            Application(0, -1, 10, 5, vm_type)
        with pytest.raises(ConfigurationError):
            Application(0, 0, 0, 5, vm_type)
        with pytest.raises(ConfigurationError):
            Application(0, 0, 10, 0, vm_type)
        with pytest.raises(ConfigurationError):
            Application(0, 0, 10, 5, vm_type, stable_fraction=2.0)

    def test_application_core_accounting(self):
        app = Application(0, 0, 10, 10, VMType("B2", 2, 8.0), 0.5)
        assert app.total_cores == 20
        assert app.stable_cores == 10
        assert app.degradable_cores == 10
        assert app.stable_cores + app.degradable_cores == app.total_cores

    def test_application_memory_and_end(self):
        app = Application(0, 4, 6, 3, VMType("B1", 1, 4.0))
        assert app.total_memory_bytes == 3 * 4 * 2**30
        assert app.end_step == 10

    def test_generate_applications_deterministic(self, week_grid):
        a = generate_applications(week_grid, 50, seed=3)
        b = generate_applications(week_grid, 50, seed=3)
        assert [x.app_id for x in a] == [y.app_id for y in b]
        assert [x.vm_count for x in a] == [y.vm_count for y in b]

    def test_generate_applications_bounds(self, week_grid):
        apps = generate_applications(week_grid, 100, seed=3)
        assert len(apps) == 100
        for app in apps:
            assert 0 <= app.arrival_step < week_grid.n
            assert app.end_step <= week_grid.n
            assert app.vm_count >= 1

    def test_generate_applications_validation(self, week_grid):
        with pytest.raises(ConfigurationError):
            generate_applications(week_grid, -1)
        with pytest.raises(ConfigurationError):
            generate_applications(week_grid, 5, mean_vm_count=0.5)
        with pytest.raises(ConfigurationError):
            generate_applications(week_grid, 5, arrival_window_fraction=0.0)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_generate_applications_count(self, n):
        grid = grid_days(datetime(2020, 5, 1), 7)
        assert len(generate_applications(grid, n, seed=1)) == n
