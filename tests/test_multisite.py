"""Tests for the multisite subpackage: latency, graph, variability,
grid purchase, and economics."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.multisite import (
    DEFAULT_LATENCY_THRESHOLD_MS,
    AggregationReport,
    CostBreakdown,
    EconomicModel,
    GridPurchase,
    SiteGraph,
    VBSite,
    build_vb_sites,
    combination_report,
    cov_improvement,
    latency_matrix_ms,
    latency_ms,
    pairwise_cov_improvements,
    stabilize_with_purchase,
    stable_energy_split,
    windowed_stable_energy,
)
from repro.traces import (
    PowerTrace,
    Site,
    SiteCatalog,
    default_european_catalog,
    synthesize_catalog_traces,
)
from repro.units import TimeGrid, grid_days

START = datetime(2020, 5, 1)


@pytest.fixture(scope="module")
def catalog():
    return default_european_catalog()


@pytest.fixture(scope="module")
def month_traces(catalog):
    grid = grid_days(START, 30)
    return synthesize_catalog_traces(catalog, grid, seed=17)


def flat_trace(values, name="t", capacity=400.0):
    grid = TimeGrid(START, timedelta(minutes=15), len(values))
    return PowerTrace(grid, np.array(values, float), name, "wind", capacity)


class TestLatency:
    def test_zero_distance_is_overhead_only(self, catalog):
        site = catalog["UK-wind"]
        assert latency_ms(site, site) == pytest.approx(4.0)

    def test_latency_scales_with_distance(self, catalog):
        near = latency_ms(catalog["UK-wind"], catalog["NL-wind"])
        far = latency_ms(catalog["UK-wind"], catalog["RO-wind"])
        assert near < far

    def test_matrix_symmetric(self, catalog):
        matrix = latency_matrix_ms(catalog)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_validation(self, catalog):
        a, b = catalog["UK-wind"], catalog["NL-wind"]
        with pytest.raises(ConfigurationError):
            latency_ms(a, b, inflation=0.5)
        with pytest.raises(ConfigurationError):
            latency_ms(a, b, overhead_ms=-1.0)

    def test_continental_scale_plausible(self, catalog):
        # London-ish to Bucharest-ish should exceed the 50 ms threshold
        # comfortably under the default model? It is ~2000 km -> RTT
        # ~2*2000*1.5/200 + 4 = 34 ms. Within threshold, actually.
        rtt = latency_ms(catalog["UK-wind"], catalog["RO-wind"])
        assert 20.0 < rtt < 60.0


class TestVBSite:
    def test_build_sites(self, catalog, month_traces):
        sites = build_vb_sites(catalog, month_traces)
        assert len(sites) == len(catalog)
        assert sites[0].total_cores == ClusterSpec().total_cores

    def test_trace_name_mismatch_rejected(self, catalog, month_traces):
        with pytest.raises(ConfigurationError):
            VBSite(
                catalog["UK-wind"],
                month_traces["PT-wind"],
                ClusterSpec(),
            )

    def test_missing_trace_rejected(self, catalog):
        with pytest.raises(ConfigurationError):
            build_vb_sites(catalog, {})

    def test_core_budget_series(self, catalog, month_traces):
        sites = build_vb_sites(catalog, month_traces)
        site = sites[0]
        budgets = site.core_budget_series()
        assert len(budgets) == len(site.trace)
        assert all(0 <= b <= site.total_cores for b in budgets)


class TestSiteGraph:
    def test_edges_respect_threshold(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces, 50.0)
        for a, b, data in graph.graph.edges(data=True):
            assert data["latency_ms"] <= 50.0

    def test_tighter_threshold_fewer_edges(self, catalog, month_traces):
        loose = SiteGraph(catalog, month_traces, 50.0)
        tight = SiteGraph(catalog, month_traces, 15.0)
        assert (
            tight.graph.number_of_edges() < loose.graph.number_of_edges()
        )

    def test_k1_cliques_are_nodes(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        assert len(graph.k_cliques(1)) == len(catalog)

    def test_k2_cliques_are_edges(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        assert len(graph.k_cliques(2)) == graph.graph.number_of_edges()

    def test_k3_cliques_fully_connected(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        for clique in graph.k_cliques(3)[:50]:
            for a in clique:
                for b in clique:
                    if a != b:
                        assert graph.graph.has_edge(a, b)

    def test_candidates_sorted_by_cov(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        candidates = graph.candidates(2)
        covs = [c.cov for c in candidates]
        assert covs == sorted(covs)

    def test_candidates_limit(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        assert len(graph.candidates(2, limit=5)) == 5

    def test_candidates_up_to(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        candidates = graph.candidates_up_to(3, per_k_limit=4)
        ks = {c.k for c in candidates}
        assert ks == {2, 3}

    def test_validation(self, catalog, month_traces):
        with pytest.raises(ConfigurationError):
            SiteGraph(catalog, month_traces, 0.0)
        with pytest.raises(ConfigurationError):
            SiteGraph(catalog, {}, 50.0)
        graph = SiteGraph(catalog, month_traces)
        with pytest.raises(ConfigurationError):
            graph.k_cliques(0)
        with pytest.raises(ConfigurationError):
            graph.candidates(2, limit=-1)
        with pytest.raises(ConfigurationError):
            graph.candidates_up_to(1)
        with pytest.raises(ConfigurationError):
            graph.aggregate_trace([])

    def test_group_max_latency(self, catalog, month_traces):
        graph = SiteGraph(catalog, month_traces)
        assert graph.group_max_latency(["UK-wind"]) == 0.0
        pair = graph.group_max_latency(["UK-wind", "NL-wind"])
        assert pair == pytest.approx(
            graph.latency_between("UK-wind", "NL-wind")
        )


class TestStableEnergy:
    def test_constant_trace_fully_stable(self):
        trace = flat_trace([0.5] * 96 * 3)
        stable, variable = windowed_stable_energy(trace, 3.0)
        assert variable == pytest.approx(0.0, abs=1e-9)
        assert stable == pytest.approx(trace.energy_mwh())

    def test_single_zero_kills_window_stability(self):
        values = [0.5] * (96 * 3)
        values[100] = 0.0
        trace = flat_trace(values)
        stable, variable = windowed_stable_energy(trace, 3.0)
        assert stable == 0.0
        assert variable == pytest.approx(trace.energy_mwh())

    def test_windows_are_independent(self):
        # First 1-day window flat 0.5, second flat 0.2.
        values = [0.5] * 96 + [0.2] * 96
        trace = flat_trace(values)
        stable, variable = windowed_stable_energy(trace, 1.0)
        assert stable == pytest.approx(trace.energy_mwh())
        assert variable == pytest.approx(0.0, abs=1e-9)

    def test_partial_trailing_window(self):
        values = [0.4] * (96 + 48)
        trace = flat_trace(values)
        stable, variable = windowed_stable_energy(trace, 1.0)
        assert stable == pytest.approx(trace.energy_mwh())

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            windowed_stable_energy(flat_trace([0.5] * 96), 0.0)

    def test_split_report_consistency(self, month_traces):
        report = stable_energy_split(
            month_traces, ["UK-wind", "PT-wind"], 3.0
        )
        assert report.stable_energy_mwh + report.variable_energy_mwh == (
            pytest.approx(report.total_energy_mwh)
        )
        assert 0.0 <= report.stable_fraction <= 1.0

    def test_empty_combination_rejected(self, month_traces):
        with pytest.raises(ConfigurationError):
            stable_energy_split(month_traces, [])

    def test_combination_report_covers_all_subsets(self, month_traces):
        trio = ["NO-solar", "UK-wind", "PT-wind"]
        reports = combination_report(month_traces, trio)
        assert len(reports) == 7  # 2^3 - 1

    def test_aggregation_raises_stable_fraction(self, month_traces):
        # The paper's core claim: combining complementary sites yields a
        # larger stable share than the same sites alone (on average).
        trio = ["NO-solar", "UK-wind", "PT-wind"]
        singles = [
            stable_energy_split(month_traces, [name]).stable_fraction
            for name in trio
        ]
        combined = stable_energy_split(month_traces, trio).stable_fraction
        assert combined >= np.mean(singles)

    def test_solar_alone_nearly_all_variable(self, month_traces):
        report = stable_energy_split(month_traces, ["NO-solar"])
        # Nights zero the 3-day minimum: ~100% variable (paper Fig 3b).
        assert report.stable_fraction < 0.02


class TestCovTools:
    def test_cov_improvement_definition(self, month_traces):
        improvement = cov_improvement(
            month_traces, ["NO-solar"], "UK-wind"
        )
        base = stable_energy_split(month_traces, ["NO-solar"]).cov
        combo = stable_energy_split(
            month_traces, ["NO-solar", "UK-wind"]
        ).cov
        assert improvement == pytest.approx(base / combo)

    def test_adding_site_improves_solar_cov(self, month_traces):
        assert cov_improvement(month_traces, ["NO-solar"], "UK-wind") > 1.0

    def test_pairwise_improvements_complete(self, month_traces):
        trio = {
            name: month_traces[name]
            for name in ("NO-solar", "UK-wind", "PT-wind")
        }
        improvements = pairwise_cov_improvements(trio)
        assert len(improvements) == 3
        assert all(v > 0 for v in improvements.values())


class TestGridPurchase:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GridPurchase(-1.0)
        with pytest.raises(ConfigurationError):
            GridPurchase(10.0, window_days=0.0)

    def test_zero_budget_changes_nothing(self):
        trace = flat_trace([0.5, 0.1] * 144)
        outcome = stabilize_with_purchase(trace, GridPurchase(0.0))
        assert outcome.purchased_mwh == 0.0
        assert outcome.new_stable_mwh == 0.0

    def test_budget_respected(self, month_traces):
        trace = month_traces["UK-wind"]
        outcome = stabilize_with_purchase(trace, GridPurchase(1000.0))
        assert outcome.purchased_mwh <= 1000.0 + 1e-6

    def test_gain_decomposition(self, month_traces):
        trace = month_traces["UK-wind"]
        outcome = stabilize_with_purchase(trace, GridPurchase(2000.0))
        assert outcome.new_stable_mwh == pytest.approx(
            outcome.purchased_mwh + outcome.stabilized_variable_mwh
        )

    def test_leverage_exceeds_one(self, month_traces):
        # Buying the dips always converts at least the purchased energy,
        # plus the variable energy above the old floor.
        trace = month_traces["UK-wind"]
        outcome = stabilize_with_purchase(trace, GridPurchase(2000.0))
        assert outcome.leverage >= 1.0

    def test_huge_budget_flattens(self):
        trace = flat_trace([0.1, 0.9] * 144)
        outcome = stabilize_with_purchase(trace, GridPurchase(1e9))
        # Floor rises to the max: everything stable, fill fully bought.
        max_mw = trace.power_mw().max()
        expected_gain = (
            max_mw * len(trace) * trace.grid.step_hours
            - trace.stable_energy_mwh()
        )
        assert outcome.new_stable_mwh == pytest.approx(
            expected_gain, rel=1e-6
        )

    def test_monotone_in_budget(self, month_traces):
        trace = month_traces["PT-wind"]
        small = stabilize_with_purchase(trace, GridPurchase(500.0))
        large = stabilize_with_purchase(trace, GridPurchase(5000.0))
        assert large.new_stable_mwh >= small.new_stable_mwh


class TestEconomics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EconomicModel(power_cost_fraction=1.5)
        with pytest.raises(ConfigurationError):
            EconomicModel(energy_price_per_mwh=-1)

    def test_headline_savings(self):
        # Paper §2.1: 20% x 50% = 10% of operating cost.
        assert EconomicModel().savings_fraction() == pytest.approx(0.10)

    def test_vb_cheaper_than_grid(self):
        model = EconomicModel()
        grid = model.grid_fed(100.0)
        vb = model.virtual_battery(100.0)
        assert vb.total_cost == pytest.approx(90.0)
        assert vb.total_cost < grid.total_cost
        assert vb.transmission_cost == 0.0

    def test_curtailment_credit(self, month_traces):
        model = EconomicModel()
        vb = model.virtual_battery(100.0, month_traces["UK-wind"])
        assert vb.curtailment_value > 0
        assert vb.effective_cost < vb.total_cost

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            EconomicModel().grid_fed(-1.0)


class TestCarbonModel:
    def test_validation(self):
        from repro.multisite import CarbonModel

        with pytest.raises(ConfigurationError):
            CarbonModel(grid_intensity_kg_per_mwh=-1)
        with pytest.raises(ConfigurationError):
            CarbonModel(renewable_intensity_kg_per_mwh=-1)
        with pytest.raises(ConfigurationError):
            CarbonModel(transmission_loss_fraction=1.0)

    def test_vb_far_cleaner_than_grid(self):
        from repro.multisite import CarbonModel

        model = CarbonModel()
        assert model.savings_fraction() > 0.9
        assert model.savings_kg(1000.0) > 0

    def test_losses_inflate_grid_emissions(self):
        from repro.multisite import CarbonModel

        lossless = CarbonModel(transmission_loss_fraction=0.0)
        lossy = CarbonModel(transmission_loss_fraction=0.10)
        assert lossy.grid_fed_emissions_kg(100.0) > (
            lossless.grid_fed_emissions_kg(100.0)
        )

    def test_negative_consumption_rejected(self):
        from repro.multisite import CarbonModel

        with pytest.raises(ConfigurationError):
            CarbonModel().grid_fed_emissions_kg(-1.0)
        with pytest.raises(ConfigurationError):
            CarbonModel().vb_emissions_kg(-1.0)


class TestMarketModel:
    def _wind(self):
        grid = grid_days(START, 14)
        from repro.traces import synthesize_wind

        return synthesize_wind(grid, seed=61)

    def test_validation(self):
        from repro.multisite import MarketModel

        with pytest.raises(ConfigurationError):
            MarketModel(base_price_per_mwh=-1)
        with pytest.raises(ConfigurationError):
            MarketModel(curtailment_threshold=0.0)
        with pytest.raises(ConfigurationError):
            MarketModel(compute_value_per_mwh=0.0)

    def test_price_anticorrelated_with_output(self):
        from repro.multisite import MarketModel

        trace = self._wind()
        prices = MarketModel().price_series(trace, seed=5)
        corr = np.corrcoef(prices, trace.values)[0, 1]
        assert corr < -0.5

    def test_negative_prices_occur_at_high_output(self):
        from repro.multisite import MarketModel

        trace = self._wind()
        model = MarketModel(sensitivity_per_mwh=90.0)
        prices = model.price_series(trace, seed=5)
        negative = prices < 0
        if negative.any():
            # Negative-price steps have above-average output.
            assert trace.values[negative].mean() > trace.values.mean()

    def test_curtailment_only_above_threshold(self):
        from repro.multisite import MarketModel

        trace = self._wind()
        model = MarketModel(curtailment_threshold=0.8)
        curtailed = model.curtailed_series_mwh(trace)
        assert np.all(curtailed[trace.values <= 0.8] == 0.0)
        assert np.all(curtailed >= 0.0)

    def test_compute_revenue_beats_export(self):
        from repro.multisite import compare_revenue

        trace = self._wind()
        comparison = compare_revenue(trace, seed=5)
        # §2.1: on-site compute monetizes curtailment and dodges the
        # depressed prices its own output causes.
        assert comparison.compute_revenue > comparison.export_revenue
        assert comparison.uplift > 1.0

    def test_deterministic_with_seed(self):
        from repro.multisite import compare_revenue

        trace = self._wind()
        a = compare_revenue(trace, seed=7)
        b = compare_revenue(trace, seed=7)
        assert a.export_revenue == b.export_revenue
