"""Tests for the harvest/batch subsystem (degradable workloads)."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import (
    BatchJob,
    CheckpointPolicy,
    HarvestScheduler,
    JobState,
    variable_capacity_series,
    young_daly_interval,
)
from repro.errors import ConfigurationError
from repro.traces import synthesize_solar
from repro.units import grid_days


def make_job(job_id=0, arrival=0, cores=4, work=40.0):
    return BatchJob(job_id, arrival, cores, work)


class TestJobValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchJob(0, -1, 4, 10.0)
        with pytest.raises(ConfigurationError):
            BatchJob(0, 0, 0, 10.0)
        with pytest.raises(ConfigurationError):
            BatchJob(0, 0, 4, 0.0)

    def test_remaining_work(self):
        job = make_job(work=40.0)
        job.progress_core_steps = 15.0
        assert job.remaining_core_steps == 25.0


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(interval_steps=0)
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(overhead_fraction=1.0)

    def test_young_daly_interval(self):
        # sqrt(2 * 0.1 * 80) = 4.
        assert young_daly_interval(80.0, 0.1) == 4

    def test_young_daly_monotone_in_mtbf(self):
        short = young_daly_interval(10.0, 0.1)
        long = young_daly_interval(1000.0, 0.1)
        assert long > short

    def test_young_daly_zero_overhead(self):
        assert young_daly_interval(100.0, 0.0) == 1

    def test_young_daly_validation(self):
        with pytest.raises(ConfigurationError):
            young_daly_interval(0.0, 0.1)


class TestVariableCapacity:
    def test_reservation_subtracted(self):
        grid = grid_days(datetime(2020, 6, 1), 1)
        trace = synthesize_solar(grid, seed=1)
        full = variable_capacity_series(trace, 1000, 0.0)
        reserved = variable_capacity_series(trace, 1000, 0.3)
        assert np.all(reserved <= full)
        assert np.all(reserved >= 0.0)

    def test_validation(self):
        grid = grid_days(datetime(2020, 6, 1), 1)
        trace = synthesize_solar(grid, seed=1)
        with pytest.raises(ConfigurationError):
            variable_capacity_series(trace, 0)
        with pytest.raises(ConfigurationError):
            variable_capacity_series(trace, 100, 1.5)


class TestSchedulerBasics:
    def test_single_job_completes(self):
        scheduler = HarvestScheduler(CheckpointPolicy(4, 0.0))
        job = make_job(work=40.0, cores=4)  # 10 steps at 4 cores
        result = scheduler.run([job], np.full(20, 4.0))
        assert job.is_done
        assert job.finish_step == 9
        assert job.progress_core_steps == 40.0
        assert result.goodput_fraction() == pytest.approx(1.0)

    def test_checkpoint_overhead_slows_completion(self):
        no_overhead = make_job(0, work=40.0)
        with_overhead = make_job(1, work=40.0)
        HarvestScheduler(CheckpointPolicy(4, 0.0)).run(
            [no_overhead], np.full(30, 4.0)
        )
        HarvestScheduler(CheckpointPolicy(4, 0.5)).run(
            [with_overhead], np.full(30, 4.0)
        )
        assert with_overhead.finish_step > no_overhead.finish_step
        assert with_overhead.checkpoint_core_steps > 0

    def test_gang_scheduling_all_or_nothing(self):
        scheduler = HarvestScheduler()
        big = make_job(0, cores=8, work=8.0)
        result = scheduler.run([big], np.full(5, 4.0))
        assert not big.is_done
        assert result.used_cores.sum() == 0.0

    def test_smaller_job_overtakes_blocked_head(self):
        scheduler = HarvestScheduler(CheckpointPolicy(4, 0.0))
        big = make_job(0, cores=8, work=8.0)
        small = make_job(1, cores=2, work=4.0)
        scheduler.run([big, small], np.full(10, 4.0))
        assert small.is_done
        assert not big.is_done

    def test_fifo_admission(self):
        scheduler = HarvestScheduler(CheckpointPolicy(4, 0.0))
        first = make_job(0, cores=4, work=8.0)
        second = make_job(1, cores=4, work=8.0)
        scheduler.run([first, second], np.full(10, 4.0))
        assert first.finish_step < second.finish_step

    def test_duplicate_ids_rejected(self):
        scheduler = HarvestScheduler()
        with pytest.raises(ConfigurationError):
            scheduler.run([make_job(0), make_job(0)], np.full(5, 4.0))

    def test_bad_capacity_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            HarvestScheduler().run([make_job()], np.zeros((2, 2)))


class TestPreemptionAndRollback:
    def test_preemption_rolls_back_to_checkpoint(self):
        # Checkpoint every 4 steps; capacity vanishes after 6 steps.
        policy = CheckpointPolicy(interval_steps=4, overhead_fraction=0.0)
        scheduler = HarvestScheduler(policy)
        job = make_job(cores=4, work=400.0)
        capacity = np.concatenate([np.full(6, 4.0), np.zeros(4)])
        scheduler.run([job], capacity)
        # 6 steps run: checkpoint at step index 3 (4 steps), then 2
        # uncommitted steps lost on preemption.
        assert job.preemptions == 1
        assert job.progress_core_steps == pytest.approx(16.0)
        assert job.lost_core_steps == pytest.approx(8.0)

    def test_no_checkpoint_loses_everything(self):
        policy = CheckpointPolicy(interval_steps=100, overhead_fraction=0.0)
        scheduler = HarvestScheduler(policy)
        job = make_job(cores=4, work=400.0)
        capacity = np.concatenate([np.full(6, 4.0), np.zeros(4)])
        scheduler.run([job], capacity)
        assert job.progress_core_steps == 0.0
        assert job.lost_core_steps == pytest.approx(24.0)

    def test_lifo_preemption_spares_oldest(self):
        policy = CheckpointPolicy(interval_steps=2, overhead_fraction=0.0)
        scheduler = HarvestScheduler(policy)
        old = make_job(0, cores=4, work=100.0)
        young = make_job(1, arrival=2, cores=4, work=100.0)
        capacity = np.concatenate([np.full(6, 8.0), np.full(4, 4.0)])
        scheduler.run([old, young], capacity)
        assert young.preemptions >= 1
        assert old.preemptions == 0

    def test_preempted_job_resumes_and_finishes(self):
        policy = CheckpointPolicy(interval_steps=2, overhead_fraction=0.0)
        scheduler = HarvestScheduler(policy)
        job = make_job(cores=4, work=16.0)
        capacity = np.concatenate(
            [np.full(2, 4.0), np.zeros(3), np.full(10, 4.0)]
        )
        scheduler.run([job], capacity)
        assert job.is_done
        assert job.preemptions == 1

    def test_work_conservation(self):
        # progress + remaining == total work for every job, always.
        policy = CheckpointPolicy(interval_steps=3, overhead_fraction=0.2)
        scheduler = HarvestScheduler(policy)
        rng = np.random.default_rng(3)
        jobs = [
            make_job(i, arrival=int(rng.integers(0, 20)),
                     cores=int(rng.integers(1, 8)),
                     work=float(rng.integers(8, 60)))
            for i in range(20)
        ]
        capacity = rng.integers(0, 24, size=200).astype(float)
        result = scheduler.run(jobs, capacity)
        for job in jobs:
            assert job.progress_core_steps <= job.work_core_steps + 1e-9
            assert job.committed_core_steps <= (
                job.progress_core_steps + 1e-9
            )
            assert job.lost_core_steps >= 0.0

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_capacity_never_exceeded(self, max_capacity):
        policy = CheckpointPolicy(interval_steps=3, overhead_fraction=0.1)
        scheduler = HarvestScheduler(policy)
        rng = np.random.default_rng(max_capacity)
        jobs = [
            make_job(i, cores=int(rng.integers(1, 5)),
                     work=float(rng.integers(4, 30)))
            for i in range(8)
        ]
        capacity = rng.integers(0, max_capacity + 1, size=60).astype(float)
        result = scheduler.run(jobs, capacity)
        assert np.all(result.used_cores <= capacity + 1e-9)


class TestResultMetrics:
    def _solar_run(self, interval):
        grid = grid_days(datetime(2020, 6, 1), 7)
        trace = synthesize_solar(grid, seed=5)
        capacity = variable_capacity_series(trace, 400, 0.1)
        rng = np.random.default_rng(9)
        jobs = [
            make_job(i, arrival=int(rng.integers(0, 96)),
                     cores=int(rng.integers(2, 16)),
                     work=float(rng.integers(50, 400)))
            for i in range(40)
        ]
        policy = CheckpointPolicy(interval, 0.1)
        return HarvestScheduler(policy).run(jobs, capacity)

    def test_solar_harvest_progresses(self):
        result = self._solar_run(8)
        assert result.useful_core_steps > 0
        assert result.total_preemptions > 0  # nights preempt everything
        assert 0.0 < result.goodput_fraction() <= 1.0
        assert 0.0 < result.harvest_utilization() <= 1.0

    def test_checkpoint_interval_tradeoff(self):
        # Very rare checkpoints lose more work than moderate ones on a
        # diurnal (nightly-preempting) supply.
        moderate = self._solar_run(8)
        rare = self._solar_run(500)
        assert rare.lost_core_steps > moderate.lost_core_steps

    def test_mean_completion_nan_when_nothing_finishes(self):
        result = HarvestScheduler().run(
            [make_job(work=1000.0)], np.zeros(5)
        )
        assert np.isnan(result.mean_completion_steps())
