"""End-to-end integration tests over the full pipeline.

Each test exercises a complete paper workflow: traces -> forecasts ->
scheduling -> execution -> analysis, asserting cross-module invariants
that unit tests cannot see.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro import (
    Datacenter,
    DatacenterConfig,
    GreedyScheduler,
    MIPScheduler,
    NoisyOracleForecaster,
    PolicyComparison,
    SiteGraph,
    TimeGrid,
    default_european_catalog,
    execute_placement,
    generate_applications,
    generate_vm_requests,
    grid_days,
    problem_from_forecasts,
    summarize_transfers,
    synthesize_catalog_traces,
    workload_matched_to_power,
)
from repro.cluster import EventKind
from repro.sched.overhead import placement_load_series
from repro.wan import WanSimulator, WanTopology, flows_from_execution

START = datetime(2015, 5, 1)


@pytest.fixture(scope="module")
def pipeline():
    """One shared medium-size end-to-end run."""
    catalog = default_european_catalog().subset(
        ["NO-solar", "UK-wind", "PT-wind"]
    )
    grid = TimeGrid(START, timedelta(hours=1), 5 * 24)
    traces = synthesize_catalog_traces(catalog, grid, seed=99)
    total_cores = {name: 20000 for name in traces}
    apps = generate_applications(
        grid, 80, seed=98, mean_vm_count=30, mean_duration_days=2.0
    )
    forecaster = NoisyOracleForecaster(seed=97)
    problem = problem_from_forecasts(
        grid, traces, total_cores, apps, forecaster
    )
    actual = {
        name: np.floor(traces[name].values * total_cores[name])
        for name in traces
    }
    placements = {
        "Greedy": GreedyScheduler().schedule(problem),
        "MIP": MIPScheduler(time_limit_s=60.0).schedule(problem),
        "MIP-peak": MIPScheduler(
            peak_weight=50.0, time_limit_s=60.0
        ).schedule(problem),
    }
    executions = {
        name: execute_placement(problem, placement, actual)
        for name, placement in placements.items()
    }
    return problem, actual, placements, executions


class TestSchedulerPipeline:
    def test_all_placements_complete(self, pipeline):
        problem, _, placements, _ = pipeline
        for placement in placements.values():
            placement.validate_complete(problem)

    def test_stable_load_conserved_across_sites(self, pipeline):
        """Total placed stable cores equals the apps' stable demand at
        every step, for every policy — placement moves VMs around but
        never creates or destroys them."""
        problem, _, placements, _ = pipeline
        demand = np.zeros(problem.grid.n)
        for app in problem.apps:
            stable = app.vm_count * app.vm_type.cores * app.stable_fraction
            demand[app.arrival_step : app.end_step] += stable
        for name, placement in placements.items():
            stable, _ = placement_load_series(problem, placement)
            placed = np.sum(list(stable.values()), axis=0)
            np.testing.assert_allclose(placed, demand, atol=1e-6)

    def test_traffic_conservation_per_site(self, pipeline):
        """Out minus in equals the final displacement level (bytes)."""
        problem, _, _, executions = pipeline
        for execution in executions.values():
            for site in execution.sites:
                net = site.out_bytes.sum() - site.in_bytes.sum()
                expected = site.displaced[-1] * problem.bytes_per_core
                assert net == pytest.approx(expected, rel=1e-6, abs=1.0)

    def test_policy_comparison_is_well_formed(self, pipeline):
        _, _, _, executions = pipeline
        comparison = PolicyComparison(
            [
                summarize_transfers(name, e.total_transfer_series())
                for name, e in executions.items()
            ]
        )
        table = comparison.as_table()
        assert all(name in table for name in executions)
        for summary in comparison.summaries:
            assert summary.peak_gb >= summary.p99_gb >= 0.0
            assert summary.total_gb >= summary.peak_gb

    def test_wan_replay_accounts_every_flow(self, pipeline):
        problem, _, _, executions = pipeline
        execution = executions["MIP-peak"]
        flows = flows_from_execution(execution, problem.grid)
        if not flows:
            pytest.skip("no migrations large enough for WAN replay")
        topology = WanTopology(tuple(problem.site_names), 200.0)
        results = WanSimulator(topology, problem.grid.step_seconds).run(
            flows
        )
        assert len(results) == len(flows)
        moved = sum(r.flow.size_bytes for r in results if r.completed)
        offered = sum(f.size_bytes for f in flows)
        # At 200 Gbps everything should drain within the horizon.
        assert moved == pytest.approx(offered)


class TestSingleSitePipeline:
    def test_graph_to_datacenter_consistency(self):
        """The SiteGraph's trace and the Datacenter consume the same
        normalized series; a full single-site run stays internally
        consistent with the trace's statistics."""
        catalog = default_european_catalog().subset(
            ["BE-wind", "NL-wind", "DK-wind"]
        )
        grid = grid_days(START, 5)
        traces = synthesize_catalog_traces(catalog, grid, seed=55)
        graph = SiteGraph(catalog, traces)
        assert graph.candidates(2)  # graph is connected enough
        trace = traces["BE-wind"]
        config = DatacenterConfig()
        workload = workload_matched_to_power(
            float(trace.values.mean()), config.cluster.total_cores
        )
        requests = generate_vm_requests(grid, workload, seed=56)
        result = Datacenter(config, trace).run(requests)
        # Power series in the result is the trace, verbatim.
        np.testing.assert_allclose(result.power_series(), trace.values)
        # Every eviction's bytes correspond to a real VM's memory.
        memory_sizes = {r.memory_bytes for r in requests}
        for event in result.events.of_kind(EventKind.EVICT):
            assert event.bytes_moved in memory_sizes

    def test_event_log_balances(self):
        """Every launched VM was queued first; every eviction's VM was
        admitted or launched before."""
        grid = grid_days(START, 3)
        from repro.traces import synthesize_wind

        trace = synthesize_wind(grid, seed=31, name="site")
        config = DatacenterConfig()
        workload = workload_matched_to_power(
            float(trace.values.mean()), config.cluster.total_cores
        )
        requests = generate_vm_requests(grid, workload, seed=32)
        result = Datacenter(config, trace).run(requests)
        queued: set[int] = set()
        started: set[int] = set()
        for event in result.events:
            if event.kind is EventKind.QUEUE:
                queued.add(event.vm_id)
            elif event.kind is EventKind.ADMIT:
                started.add(event.vm_id)
            elif event.kind is EventKind.LAUNCH:
                assert event.vm_id in queued
                started.add(event.vm_id)
            elif event.kind is EventKind.EVICT:
                assert event.vm_id in started
            elif event.kind is EventKind.COMPLETE:
                assert event.vm_id in started
