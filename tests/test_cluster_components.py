"""Tests for cluster building blocks: specs, servers, VMs, policies,
admission, power models, and the eviction planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    AdmissionControl,
    BestFit,
    ClusterSpec,
    EvictionOrder,
    EvictionPlanner,
    FirstFit,
    LinearCorePower,
    Server,
    ServerGranularPower,
    ServerSpec,
    VM,
    VMState,
    WorstFit,
    make_policy,
)
from repro.cluster.migration import migration_bytes
from repro.errors import AllocationError, CapacityError, ConfigurationError
from repro.workload import VMClass, VMRequest, VMType


def make_vm(vm_id=0, cores=4, memory_gib=16.0, vm_class=VMClass.STABLE,
            lifetime=10):
    vm_type = VMType(f"T{cores}", cores, memory_gib)
    return VM(VMRequest(vm_id, 0, lifetime, vm_type, vm_class))


class TestSpecs:
    def test_server_spec_defaults_match_paper(self):
        spec = ServerSpec()
        assert spec.cores == 40
        assert spec.memory_gib == 512.0

    def test_cluster_spec_defaults_match_paper(self):
        cluster = ClusterSpec()
        assert cluster.n_servers == 700
        assert cluster.total_cores == 28000

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(cores=0)
        with pytest.raises(ConfigurationError):
            ServerSpec(memory_gib=-1)
        with pytest.raises(ConfigurationError):
            ServerSpec(idle_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(n_servers=0)

    def test_core_power_partition(self):
        spec = ServerSpec(max_power_w=400.0, idle_fraction=0.3, cores=40)
        # idle + all cores == max power.
        total = 400.0 * 0.3 + spec.core_power_w * 40
        assert total == pytest.approx(400.0)


class TestServer:
    def test_host_and_release(self):
        server = Server(0, ServerSpec())
        vm = make_vm(cores=8)
        server.host(vm)
        assert server.allocated_cores == 8
        assert server.free_cores == 32
        assert vm.state is VMState.RUNNING
        assert vm.server_id == 0
        server.release(vm)
        assert server.is_empty
        assert server.allocated_cores == 0

    def test_capacity_enforced(self):
        server = Server(0, ServerSpec(cores=8))
        server.host(make_vm(0, cores=8))
        with pytest.raises(CapacityError):
            server.host(make_vm(1, cores=1))

    def test_memory_enforced(self):
        server = Server(0, ServerSpec(cores=40, memory_gib=16.0))
        with pytest.raises(CapacityError):
            server.host(make_vm(0, cores=1, memory_gib=32.0))

    def test_double_host_rejected(self):
        server = Server(0, ServerSpec())
        vm = make_vm()
        server.host(vm)
        with pytest.raises(AllocationError):
            server.host(vm)

    def test_release_unknown_rejected(self):
        server = Server(0, ServerSpec())
        with pytest.raises(AllocationError):
            server.release(make_vm())

    def test_running_vms_filter(self):
        server = Server(0, ServerSpec())
        stable = make_vm(0, vm_class=VMClass.STABLE)
        degradable = make_vm(1, vm_class=VMClass.DEGRADABLE)
        server.host(stable)
        server.host(degradable)
        degradable.pause()
        assert [v.vm_id for v in server.running_vms()] == [0]


class TestVMLifecycle:
    def test_initial_state(self):
        vm = make_vm(lifetime=5)
        assert vm.state is VMState.PENDING
        assert vm.remaining_steps == 5

    def test_place_evict_cycle(self):
        vm = make_vm()
        vm.place(3)
        assert vm.state is VMState.RUNNING
        vm.evict()
        assert vm.state is VMState.MIGRATED_OUT
        assert vm.migrations == 1
        vm.place(5)  # re-placed at another site
        assert vm.state is VMState.RUNNING

    def test_stable_cannot_pause(self):
        vm = make_vm(vm_class=VMClass.STABLE)
        vm.place(0)
        with pytest.raises(AllocationError):
            vm.pause()

    def test_degradable_pause_resume(self):
        vm = make_vm(vm_class=VMClass.DEGRADABLE)
        vm.place(0)
        vm.pause()
        assert vm.state is VMState.PAUSED
        vm.resume()
        assert vm.state is VMState.RUNNING

    def test_invalid_transitions(self):
        vm = make_vm()
        with pytest.raises(AllocationError):
            vm.evict()  # not running
        with pytest.raises(AllocationError):
            vm.resume()  # not paused
        vm.place(0)
        with pytest.raises(AllocationError):
            vm.place(1)  # already running

    def test_tick_counts_down_and_completes(self):
        vm = make_vm(lifetime=2)
        vm.place(0)
        assert vm.tick() is False
        assert vm.remaining_steps == 1
        assert vm.tick() is True
        assert vm.state is VMState.COMPLETED

    def test_tick_ignores_non_running(self):
        vm = make_vm(vm_class=VMClass.DEGRADABLE, lifetime=3)
        vm.place(0)
        vm.pause()
        assert vm.tick() is False
        assert vm.remaining_steps == 3


class TestAllocationPolicies:
    def _servers(self, frees):
        servers = []
        for i, used in enumerate(frees):
            server = Server(i, ServerSpec(cores=40))
            if used:
                server.host(make_vm(vm_id=100 + i, cores=used))
            servers.append(server)
        return servers

    def test_bestfit_prefers_tightest(self):
        servers = self._servers([0, 30, 20])  # free: 40, 10, 20
        chosen = BestFit().choose(servers, make_vm(cores=8))
        assert chosen.server_id == 1

    def test_firstfit_prefers_lowest_id(self):
        servers = self._servers([0, 30, 20])
        chosen = FirstFit().choose(servers, make_vm(cores=8))
        assert chosen.server_id == 0

    def test_worstfit_prefers_emptiest(self):
        servers = self._servers([10, 30, 20])
        chosen = WorstFit().choose(servers, make_vm(cores=8))
        assert chosen.server_id == 0

    def test_policies_return_none_when_full(self):
        servers = self._servers([40, 40])
        for policy in (BestFit(), FirstFit(), WorstFit()):
            assert policy.choose(servers, make_vm(cores=1)) is None

    def test_make_policy(self):
        assert isinstance(make_policy("bestfit"), BestFit)
        assert isinstance(make_policy("FIRSTFIT"), FirstFit)
        with pytest.raises(ConfigurationError):
            make_policy("quantum")


class TestAdmission:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionControl(0)
        with pytest.raises(ConfigurationError):
            AdmissionControl(100, target_utilization=0.0)

    def test_static_cap(self):
        admission = AdmissionControl(1000, 0.70)
        assert admission.core_cap() == 700
        assert admission.admits(make_vm(cores=10), 690)
        assert not admission.admits(make_vm(cores=11), 690)

    def test_power_relative_cap(self):
        admission = AdmissionControl(1000, 0.70)
        assert admission.core_cap(500) == 350
        assert admission.admits(make_vm(cores=10), 340, 500)
        assert not admission.admits(make_vm(cores=11), 340, 500)

    def test_cap_never_exceeds_total(self):
        admission = AdmissionControl(1000, 0.70)
        assert admission.core_cap(5000) == 700

    def test_headroom_nonnegative(self):
        admission = AdmissionControl(1000, 0.70)
        assert admission.headroom_cores(900) == 0
        assert admission.headroom_cores(100, 500) == 250


class TestPowerModels:
    def test_linear_budget(self):
        cluster = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))
        model = LinearCorePower(cluster)
        assert model.core_budget(1.0) == 400
        assert model.core_budget(0.5) == 200
        assert model.core_budget(0.0) == 0

    def test_linear_floors(self):
        cluster = ClusterSpec(n_servers=1, server=ServerSpec(cores=40))
        assert LinearCorePower(cluster).core_budget(0.999) == 39

    def test_linear_range_check(self):
        cluster = ClusterSpec(n_servers=1)
        with pytest.raises(ConfigurationError):
            LinearCorePower(cluster).core_budget(-0.1)
        with pytest.raises(ConfigurationError):
            LinearCorePower(cluster).core_budget(1.5)

    def test_server_granular_full_power(self):
        cluster = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))
        model = ServerGranularPower(cluster)
        assert model.core_budget(1.0) == 400

    def test_server_granular_idle_tax(self):
        # With idle overhead, half power yields *fewer* cores than half
        # the fleet's cores: idle draw of powered servers eats budget.
        cluster = ClusterSpec(
            n_servers=10, server=ServerSpec(cores=40, idle_fraction=0.3)
        )
        granular = ServerGranularPower(cluster).core_budget(0.5)
        linear = LinearCorePower(cluster).core_budget(0.5)
        assert granular <= linear

    def test_server_granular_zero(self):
        cluster = ClusterSpec(n_servers=10)
        assert ServerGranularPower(cluster).core_budget(0.0) == 0


class TestEvictionPlanner:
    def _loaded_servers(self, n_servers=4, vms_per_server=2, cores=4):
        servers = [Server(i, ServerSpec(cores=40)) for i in range(n_servers)]
        vm_id = 0
        for server in servers:
            for _ in range(vms_per_server):
                server.host(make_vm(vm_id, cores=cores))
                vm_id += 1
        return servers

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EvictionPlanner(0)

    def test_no_eviction_when_not_needed(self):
        planner = EvictionPlanner(4)
        migrate, pause = planner.plan(self._loaded_servers(), 0)
        assert migrate == [] and pause == []

    def test_frees_enough_cores(self):
        servers = self._loaded_servers(4, 2, 4)  # 32 cores allocated
        planner = EvictionPlanner(4)
        migrate, pause = planner.plan(servers, 10)
        assert sum(vm.cores for vm in migrate + pause) >= 10

    def test_round_robin_spreads_across_servers(self):
        servers = self._loaded_servers(4, 2, 4)
        planner = EvictionPlanner(4)
        migrate, _ = planner.plan(servers, 16)  # needs 4 victims
        hosts = [vm.server_id for vm in migrate]
        assert len(set(hosts)) == 4  # one victim per server first lap

    def test_rotor_persists_between_calls(self):
        servers = self._loaded_servers(4, 2, 4)
        planner = EvictionPlanner(4)
        first, _ = planner.plan(servers, 4)
        second, _ = planner.plan(servers, 4)
        assert first[0].server_id != second[0].server_id

    def test_largest_cores_order(self):
        server = Server(0, ServerSpec(cores=40))
        server.host(make_vm(0, cores=2))
        server.host(make_vm(1, cores=16))
        planner = EvictionPlanner(1, EvictionOrder.LARGEST_CORES)
        migrate, _ = planner.plan([server], 4)
        assert migrate[0].vm_id == 1

    def test_smallest_memory_order(self):
        server = Server(0, ServerSpec(cores=40))
        server.host(make_vm(0, cores=4, memory_gib=32.0))
        server.host(make_vm(1, cores=4, memory_gib=8.0))
        planner = EvictionPlanner(1, EvictionOrder.SMALLEST_MEMORY)
        migrate, _ = planner.plan([server], 4)
        assert migrate[0].vm_id == 1

    def test_pause_degradable_splits_output(self):
        server = Server(0, ServerSpec(cores=40))
        server.host(make_vm(0, cores=4, vm_class=VMClass.DEGRADABLE))
        server.host(make_vm(1, cores=4, vm_class=VMClass.STABLE))
        planner = EvictionPlanner(1, pause_degradable=True)
        migrate, pause = planner.plan([server], 8)
        assert [vm.vm_id for vm in pause] == [0]
        assert [vm.vm_id for vm in migrate] == [1]

    def test_gives_up_when_cluster_empty(self):
        servers = [Server(i, ServerSpec()) for i in range(3)]
        planner = EvictionPlanner(3)
        migrate, pause = planner.plan(servers, 100)
        assert migrate == [] and pause == []

    def test_never_selects_same_vm_twice(self):
        servers = self._loaded_servers(2, 3, 4)
        planner = EvictionPlanner(2)
        migrate, _ = planner.plan(servers, 24)  # all 6 VMs
        ids = [vm.vm_id for vm in migrate]
        assert len(ids) == len(set(ids))

    def test_migration_bytes_sums_memory(self):
        vms = [make_vm(0, memory_gib=16.0), make_vm(1, memory_gib=8.0)]
        assert migration_bytes(vms) == 24 * 2**30
