"""Tests for the unified simulate() facade (repro.sim.facade).

Routing is by input shape; every route must hand back the underlying
engine's native result unchanged, and the legacy entry point survives
only as a deprecation shim over the same implementation.
"""

from __future__ import annotations

import contextlib
import warnings

import pytest

from tests.test_detailed_sim import make_app, two_site_setup
from tests.test_fleet import make_site, reference_run

from repro import simulate
from repro.cluster import Datacenter
from repro.errors import ConfigurationError
from repro.sched import Placement
from repro.sim import execute_placement_detailed


@contextlib.contextmanager
def warnings_ignored():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        yield


class TestRouting:
    def test_datacenter_route(self):
        site = make_site(1, 600, 150)
        got = simulate(
            Datacenter(site.config, site.trace), site.requests
        )
        want = reference_run(site)
        assert got.summary_dict() == want.summary_dict()

    def test_datacenter_route_engine_passthrough(self):
        site = make_site(2, 400, 100)
        got = simulate(
            Datacenter(site.config, site.trace), site.requests,
            engine="soa",
        )
        assert got.summary_dict() == reference_run(
            site, engine="soa"
        ).summary_dict()

    def test_single_fleet_site_route(self):
        site = make_site(3, 600, 150)
        got = simulate(site)
        assert got.site_name == site.name
        assert got.summary_dict() == reference_run(site).summary_dict()

    def test_fleet_route(self):
        sites = [make_site(4, 500, 120), make_site(5, 500, 120)]
        results = simulate(sites)
        assert sorted(results) == sorted(s.name for s in sites)
        for site in sites:
            assert (
                results[site.name].summary_dict()
                == reference_run(site).summary_dict()
            )

    def test_placement_route(self):
        problem, traces = two_site_setup(
            [1.0] * 6, [1.0] * 6, [make_app()]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        got = simulate(problem, placement, traces)
        with warnings_ignored():
            want = execute_placement_detailed(
                problem, placement, traces
            )
        assert got.summary_dict() == want.summary_dict()
        with pytest.raises(ConfigurationError):
            simulate(problem, placement)
        with pytest.raises(ConfigurationError):
            simulate(problem, "not a placement", traces)

    def test_unroutable_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate("a string")
        with pytest.raises(ConfigurationError):
            simulate([1, 2, 3])
        with pytest.raises(ConfigurationError):
            simulate(make_site(6, 100, 10), "extra")
        with pytest.raises(ConfigurationError):
            simulate(Datacenter(
                make_site(7, 100, 10).config,
                make_site(7, 100, 10).trace,
            ))


class TestDeprecatedShim:
    def test_execute_placement_detailed_warns_and_delegates(self):
        # The shim must warn before touching its arguments, so invalid
        # inputs still surface the deprecation first.
        with pytest.warns(DeprecationWarning, match="simulate"):
            with pytest.raises(Exception):
                execute_placement_detailed(None, None, {})
