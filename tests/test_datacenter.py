"""Integration tests for the single-site Datacenter simulator."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    EventKind,
    ServerSpec,
    VMState,
)
from repro.errors import ConfigurationError
from repro.traces import PowerTrace, synthesize_wind
from repro.units import TimeGrid, grid_days
from repro.workload import (
    AzureWorkloadConfig,
    VMClass,
    VMRequest,
    VMType,
    generate_vm_requests,
    workload_matched_to_power,
)

START = datetime(2020, 5, 1)


def constant_trace(value, n=10, capacity=1.0):
    grid = TimeGrid(START, timedelta(minutes=15), n)
    return PowerTrace(grid, np.full(n, value), "t", "wind", capacity)


def step_trace(values):
    grid = TimeGrid(START, timedelta(minutes=15), len(values))
    return PowerTrace(grid, np.array(values, dtype=float), "t", "wind")


def small_config(**overrides):
    defaults = dict(
        cluster=ClusterSpec(n_servers=4, server=ServerSpec(cores=10)),
        queue_patience_steps=100,
    )
    defaults.update(overrides)
    return DatacenterConfig(**defaults)


def request(vm_id, arrival, lifetime, cores=2, memory_gib=8.0,
            vm_class=VMClass.STABLE):
    return VMRequest(
        vm_id, arrival, lifetime, VMType(f"T{cores}", cores, memory_gib),
        vm_class,
    )


class TestBasicLifecycle:
    def test_admit_run_complete(self):
        config = small_config()
        dc = Datacenter(config, constant_trace(1.0, 10))
        result = dc.run([request(0, 1, 3)])
        assert result.events.count(EventKind.ADMIT) == 1
        assert result.events.count(EventKind.COMPLETE) == 1
        complete = result.events.of_kind(EventKind.COMPLETE)[0]
        assert complete.step == 4  # arrived 1, ran 3 full steps
        assert result.records[5].allocated_cores == 0

    def test_no_power_queues_vm(self):
        config = small_config()
        dc = Datacenter(config, step_trace([0.0] * 5 + [1.0] * 5))
        result = dc.run([request(0, 0, 3)])
        assert result.events.count(EventKind.QUEUE) == 1
        launches = result.events.of_kind(EventKind.LAUNCH)
        assert len(launches) == 1
        assert launches[0].step == 5
        assert launches[0].bytes_moved == 8 * 2**30

    def test_launch_counts_as_in_migration(self):
        config = small_config()
        dc = Datacenter(config, step_trace([0.0, 1.0, 1.0, 1.0, 1.0]))
        result = dc.run([request(0, 0, 2)])
        assert result.in_bytes_series()[1] == 8 * 2**30
        assert result.out_bytes_series().sum() == 0.0

    def test_immediate_admit_moves_no_bytes(self):
        config = small_config()
        dc = Datacenter(config, constant_trace(1.0, 5))
        result = dc.run([request(0, 0, 2)])
        assert result.in_bytes_series().sum() == 0.0
        assert result.out_bytes_series().sum() == 0.0

    def test_queue_patience_expiry(self):
        config = small_config(queue_patience_steps=2)
        dc = Datacenter(config, constant_trace(0.0, 6))
        result = dc.run([request(0, 0, 2)])
        assert result.events.count(EventKind.REJECT) == 1
        assert result.events.count(EventKind.LAUNCH) == 0

    def test_arrival_beyond_grid_ignored(self):
        config = small_config()
        dc = Datacenter(config, constant_trace(1.0, 5))
        result = dc.run([request(0, 99, 2)])
        assert len(result.events) == 0


class TestPowerDrivenEviction:
    def test_power_drop_evicts(self):
        config = small_config(admission_utilization=1.0)
        # 40 cores at full power; fill 20 cores, then drop power to 0.25
        # (10 cores) -> must evict >= 10 cores worth of VMs.
        trace = step_trace([1.0, 1.0, 0.25, 0.25, 0.25])
        dc = Datacenter(config, trace)
        requests = [request(i, 0, 5, cores=2) for i in range(10)]
        result = dc.run(requests)
        evicted_cores = sum(
            2 for _ in result.events.of_kind(EventKind.EVICT)
        )
        assert evicted_cores >= 10
        assert result.records[2].running_cores <= 10
        out = result.out_bytes_series()
        assert out[2] > 0 and out[:2].sum() == 0

    def test_eviction_bytes_equal_memory(self):
        config = small_config(admission_utilization=1.0)
        trace = step_trace([1.0, 0.0, 0.0])
        dc = Datacenter(config, trace)
        result = dc.run([request(0, 0, 5, cores=2, memory_gib=8.0)])
        assert result.out_bytes_series()[1] == 8 * 2**30
        vm_events = result.events.for_vm(0)
        kinds = [e.kind for e in vm_events]
        assert kinds == [EventKind.ADMIT, EventKind.EVICT]

    def test_minor_dip_absorbed_by_unallocated_cores(self):
        # Paper's key observation: at 70% admission, a dip smaller than
        # the headroom causes no migration.
        config = small_config(admission_utilization=0.5)
        trace = step_trace([1.0, 1.0, 0.7, 0.7, 0.7])
        dc = Datacenter(config, trace)
        requests = [request(i, 0, 5, cores=2) for i in range(10)]
        result = dc.run(requests)
        # Cap admits 20 cores; power drop to 0.7 (28 cores) > 20.
        assert result.events.count(EventKind.EVICT) == 0
        assert result.out_bytes_series().sum() == 0.0

    def test_deep_dip_forces_migration(self):
        config = small_config(admission_utilization=0.5)
        trace = step_trace([1.0, 1.0, 0.25, 0.25])
        dc = Datacenter(config, trace)
        requests = [request(i, 0, 5, cores=2) for i in range(10)]
        result = dc.run(requests)
        # 20 admitted cores, budget now 10 -> evict half.
        assert result.events.count(EventKind.EVICT) >= 5

    def test_pause_degradable_avoids_traffic(self):
        config = small_config(
            admission_utilization=1.0, pause_degradable=True
        )
        trace = step_trace([1.0, 0.25, 0.25, 1.0, 1.0, 1.0, 1.0, 1.0])
        dc = Datacenter(config, trace)
        requests = [
            request(i, 0, 3, cores=2, vm_class=VMClass.DEGRADABLE)
            for i in range(10)
        ]
        result = dc.run(requests)
        assert result.events.count(EventKind.EVICT) == 0
        assert result.events.count(EventKind.PAUSE) >= 5
        assert result.out_bytes_series().sum() == 0.0
        # Power returns at step 3 -> paused VMs resume.
        assert result.events.count(EventKind.RESUME) >= 5

    def test_paused_vm_makes_no_progress(self):
        config = small_config(
            admission_utilization=1.0, pause_degradable=True
        )
        # Power: on for 1 step, off for 3, on again.
        trace = step_trace([1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0])
        dc = Datacenter(config, trace)
        result = dc.run(
            [request(0, 0, 3, cores=2, vm_class=VMClass.DEGRADABLE)]
        )
        complete = result.events.of_kind(EventKind.COMPLETE)
        assert len(complete) == 1
        # Ran step 0, paused steps 1-3, resumed 4, needs 2 more steps.
        assert complete[0].step == 6

    def test_stable_vm_never_paused(self):
        config = small_config(
            admission_utilization=1.0, pause_degradable=True
        )
        trace = step_trace([1.0, 0.0, 0.0])
        dc = Datacenter(config, trace)
        result = dc.run([request(0, 0, 5, vm_class=VMClass.STABLE)])
        assert result.events.count(EventKind.PAUSE) == 0
        assert result.events.count(EventKind.EVICT) == 1


class TestAccountingInvariants:
    def _run_random(self, **config_overrides):
        grid = grid_days(START, 3)
        trace = synthesize_wind(grid, seed=3, name="site")
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=20, server=ServerSpec(cores=40)),
            **config_overrides,
        )
        workload = workload_matched_to_power(
            float(trace.values.mean()), config.cluster.total_cores
        )
        requests = generate_vm_requests(grid, workload, seed=4)
        return Datacenter(config, trace).run(requests)

    def test_running_never_exceeds_budget(self):
        result = self._run_random()
        for record in result.records:
            assert record.running_cores <= record.core_budget

    def test_allocated_never_exceeds_total(self):
        result = self._run_random()
        total = result.config.cluster.total_cores
        for record in result.records:
            assert 0 <= record.allocated_cores <= total
            assert record.running_cores <= record.allocated_cores

    def test_event_counts_match_records(self):
        result = self._run_random()
        assert result.events.count(EventKind.EVICT) == sum(
            r.n_evicted for r in result.records
        )
        assert result.events.count(EventKind.LAUNCH) == sum(
            r.n_launched for r in result.records
        )
        assert result.events.count(EventKind.ADMIT) == sum(
            r.n_admitted for r in result.records
        )

    def test_traffic_matches_events(self):
        result = self._run_random()
        assert result.out_bytes_series().sum() == pytest.approx(
            result.events.bytes_of_kind(EventKind.EVICT)
        )
        assert result.in_bytes_series().sum() == pytest.approx(
            result.events.bytes_of_kind(EventKind.LAUNCH)
        )

    def test_every_vm_fully_accounted(self):
        result = self._run_random()
        # Each VM: admitted xor queued at first touch.
        first_touch: dict[int, EventKind] = {}
        for event in result.events:
            first_touch.setdefault(event.vm_id, event.kind)
        assert all(
            kind in (EventKind.ADMIT, EventKind.QUEUE)
            for kind in first_touch.values()
        )

    def test_pause_mode_invariants(self):
        result = self._run_random(pause_degradable=True)
        assert result.events.count(EventKind.RESUME) <= result.events.count(
            EventKind.PAUSE
        )
        for record in result.records:
            assert record.running_cores <= record.core_budget

    def test_server_power_model_runs(self):
        result = self._run_random(power_model="server")
        for record in result.records:
            assert record.running_cores <= record.core_budget

    def test_static_admission_variant(self):
        result = self._run_random(power_relative_admission=False)
        cap = int(0.70 * result.config.cluster.total_cores)
        for record in result.records:
            assert record.allocated_cores <= max(
                cap, record.allocated_cores
            )  # smoke: runs to completion


class TestSimulationResultMetrics:
    def test_silent_fraction_perfect_when_power_constant(self):
        config = small_config()
        dc = Datacenter(config, constant_trace(0.8, 20))
        result = dc.run([request(0, 0, 3)])
        assert result.power_changes_without_migration_fraction() == 1.0

    def test_wan_fraction_zero_without_migrations(self):
        config = small_config()
        dc = Datacenter(config, constant_trace(1.0, 20))
        result = dc.run([request(0, 0, 3)])
        assert result.migration_active_fraction() == 0.0

    def test_gb_series_unit(self):
        config = small_config(admission_utilization=1.0)
        dc = Datacenter(config, step_trace([1.0, 0.0, 0.0]))
        result = dc.run([request(0, 0, 5, memory_gib=8.0)])
        assert result.out_gb_series()[1] == pytest.approx(
            8 * 2**30 / 1e9
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DatacenterConfig(allocation="magic")
        with pytest.raises(ConfigurationError):
            DatacenterConfig(power_model="fusion")
        with pytest.raises(ConfigurationError):
            DatacenterConfig(queue_patience_steps=-1)
