"""Tests for the MIP's priced grid-import layer (GridPricing).

The planner-side half of the carbon/price-aware grid feature: grid
import variables ``g[s, t]`` let the MIP buy cores through a renewable
lull instead of migrating VMs away, weighted by spot price and carbon
intensity, bounded by the site's energy budget and import power limit.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.sched import (
    GridPricing,
    MIPScheduler,
    RollingMIPScheduler,
    SchedulingProblem,
    SiteCapacity,
    placement_objective,
    problem_from_forecasts,
)
from repro.sched.decompose import (
    DecomposeSpec,
    WindowState,
    _windows_separable,
    build_window_problem,
    plan_windows,
)
from repro.sched.mip import _Layout, _assemble, _assemble_reference
from repro.forecast import PersistenceForecaster
from repro.supply import SupplySpec
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import Application, VMType

START = datetime(2020, 5, 1)


def make_grid(n=24):
    return TimeGrid(START, timedelta(hours=1), n)


def make_app(app_id=0, arrival=0, duration=24, vms=100, cores=4,
             stable=1.0):
    return Application(
        app_id, arrival, duration, vms,
        VMType(f"T{cores}", cores, 8.0), stable,
    )


def make_pricing(n=24, price=1.0, carbon=0.0, budget=1000.0,
                 max_power=None, carbon_weight=0.0, sites=("a",)):
    price_series = np.full(n, float(price))
    carbon_series = np.full(n, float(carbon))
    return GridPricing(
        price_per_mwh=price_series,
        carbon_per_mwh=carbon_series,
        step_hours=1.0,
        cores_per_mw={name: 10.0 for name in sites},
        budget_mwh={name: budget for name in sites},
        max_power_mw={name: max_power for name in sites},
        carbon_weight=carbon_weight,
    )


def lull_problem(pricing, n=24, lull=slice(8, 16), lull_cap=300.0,
                 base_cap=500.0, **kwargs):
    """One site whose capacity dips below the app's 400 stable cores."""
    capacity = np.full(n, base_cap)
    capacity[lull] = lull_cap
    sites = (SiteCapacity("a", 1000, capacity),)
    apps = (make_app(duration=n),)
    return SchedulingProblem(
        make_grid(n), sites, apps, 1e9, grid_pricing=pricing, **kwargs
    )


class TestGridPricingValidation:
    def test_rejects_length_mismatch_with_grid(self):
        with pytest.raises(SchedulingError, match="grid pricing length"):
            lull_problem(make_pricing(n=23))

    def test_rejects_price_carbon_length_mismatch(self):
        with pytest.raises(SchedulingError, match="lengths differ"):
            GridPricing(
                np.zeros(5), np.zeros(4), 1.0,
                {"a": 10.0}, {"a": 1.0},
            )

    def test_rejects_missing_site_tables(self):
        pricing = make_pricing(sites=("b",))
        with pytest.raises(SchedulingError, match="missing site"):
            lull_problem(pricing)

    def test_rejects_negative_weight_and_budget(self):
        with pytest.raises(SchedulingError, match="carbon weight"):
            make_pricing(carbon_weight=-1.0)
        with pytest.raises(SchedulingError, match="grid budget"):
            make_pricing(budget=-1.0)

    def test_rejects_non_finite_series(self):
        with pytest.raises(SchedulingError, match="finite"):
            GridPricing(
                np.array([1.0, np.inf]), np.zeros(2), 1.0,
                {"a": 10.0}, {"a": 1.0},
            )

    def test_power_cap_cores_handles_unlimited(self):
        pricing = make_pricing(max_power=None)
        assert pricing.site_power_cap_cores("a") == np.inf
        limited = make_pricing(max_power=5.0)
        assert limited.site_power_cap_cores("a") == 50.0


def assert_assembly_identical(problem, peak=False, previous=None):
    layout = _Layout(
        len(problem.apps), len(problem.sites), problem.grid.n,
        peak, reassign=previous is not None,
        grid=problem.grid_pricing is not None,
    )
    vec_m, vec_lb, vec_ub = _assemble(
        problem, layout, None, None, previous
    )
    ref_m, ref_lb, ref_ub = _assemble_reference(
        problem, layout, None, None, previous
    )
    assert vec_m.shape == ref_m.shape
    assert (vec_m - ref_m).nnz == 0
    vec_m.sort_indices()
    ref_m.sort_indices()
    assert np.array_equal(vec_m.indptr, ref_m.indptr)
    assert np.array_equal(vec_m.indices, ref_m.indices)
    assert np.array_equal(vec_m.data, ref_m.data)
    assert np.array_equal(vec_lb, ref_lb)
    assert np.array_equal(vec_ub, ref_ub)
    return layout, vec_m


class TestAssemblyGolden:
    def test_vectorized_matches_reference_with_pricing(self):
        problem = lull_problem(make_pricing(price=3.0, carbon=7.0))
        assert_assembly_identical(problem)

    def test_vectorized_matches_reference_peak_and_reassign(self):
        problem = lull_problem(
            make_pricing(price=2.0, budget=42.0, max_power=6.0)
        )
        previous = {0: {"a": 100}}
        assert_assembly_identical(problem, peak=True, previous=previous)

    def test_budget_row_bounds_and_coefficients(self):
        problem = lull_problem(make_pricing(budget=42.0))
        layout, matrix = assert_assembly_identical(problem)
        # Last row is the C7 budget row: h / cores_per_mw = 0.1 per g.
        budget_row = matrix.getrow(matrix.shape[0] - 1).toarray().ravel()
        g_cols = budget_row[layout.o_g : layout.n_vars]
        np.testing.assert_array_equal(g_cols, np.full(problem.grid.n, 0.1))
        assert not budget_row[: layout.o_g].any()

    def test_layout_without_pricing_is_unchanged(self):
        baseline = _Layout(2, 3, 24, peak=True, reassign=True)
        priced = _Layout(2, 3, 24, peak=True, reassign=True, grid=True)
        assert priced.o_g == baseline.n_vars
        assert priced.n_vars == baseline.n_vars + 3 * 24
        assert baseline.n_vars == baseline.o_g


class TestMonolithicGridChoice:
    def test_cheap_grid_buys_through_the_lull(self):
        # Lull deficit: 100 cores x 8 h = 80 MWh at $1 => $80, versus
        # ~100 GB of migration traffic.  The MIP buys.
        placement = MIPScheduler().schedule(lull_problem(make_pricing()))
        imports = placement.planned_grid_import["a"]
        assert len(imports) == 24
        assert imports[8:16].sum() == pytest.approx(80.0, rel=1e-4)
        assert imports[:8].sum() == pytest.approx(0.0, abs=1e-6)
        # Displacement stays flat: the grid absorbed the whole dip.
        assert placement.planned_displacement["a"].max() < 1.0

    def test_expensive_grid_displaces_instead(self):
        placement = MIPScheduler().schedule(
            lull_problem(make_pricing(price=100.0))
        )
        assert placement.planned_grid_import["a"].sum() < 1e-6
        assert placement.planned_displacement["a"].max() == (
            pytest.approx(100.0, rel=1e-4)
        )

    def test_budget_caps_total_purchase(self):
        placement = MIPScheduler().schedule(
            lull_problem(make_pricing(budget=40.0))
        )
        total = placement.planned_grid_import["a"].sum()
        assert total <= 40.0 + 1e-6
        assert total == pytest.approx(40.0, rel=1e-3)

    def test_power_limit_caps_per_step_purchase(self):
        placement = MIPScheduler().schedule(
            lull_problem(make_pricing(max_power=4.0))
        )
        # 4 MW at 10 cores/MW and 1 h steps = 4 MWh per step max.
        assert placement.planned_grid_import["a"].max() <= 4.0 + 1e-6

    def test_heavy_carbon_weight_suppresses_purchases(self):
        dirty = make_pricing(price=1.0, carbon=500.0, carbon_weight=10.0)
        placement = MIPScheduler().schedule(lull_problem(dirty))
        assert placement.planned_grid_import["a"].sum() < 1e-6

    def test_carbon_aware_buys_in_clean_hours(self):
        # Same price everywhere; the lull's first half is clean, the
        # second half dirty.  Weighted, the plan front-loads nothing —
        # it must cover each deficit step — but carbon cost shows up in
        # planned_cost either way.
        price = np.ones(24)
        carbon = np.zeros(24)
        carbon[12:16] = 300.0
        pricing = GridPricing(
            price, carbon, 1.0, {"a": 10.0}, {"a": 1000.0},
            carbon_weight=0.0,
        )
        placement = MIPScheduler().schedule(lull_problem(pricing))
        cost, kg = placement.planned_cost(pricing)
        assert cost == pytest.approx(80.0, rel=1e-4)
        assert kg == pytest.approx(4 * 10.0 * 300.0, rel=1e-4)

    def test_unpriced_problem_has_no_import_plan(self):
        placement = MIPScheduler().schedule(lull_problem(None))
        assert placement.planned_grid_import == {}

    def test_objective_matches_closed_form(self):
        problem = lull_problem(make_pricing(budget=40.0))
        scheduler = MIPScheduler()
        placement = scheduler.schedule(problem)
        closed = placement_objective(problem, placement)
        assert scheduler.last_timings.objective == pytest.approx(
            closed, rel=1e-6, abs=1e-6
        )


class TestDecomposedGridSeams:
    def lulled_arrivals_problem(self, pricing, lull=slice(8, None)):
        """Three windows of 8 steps, an arrival in each, lull in 2-3."""
        n = 24
        capacity = np.full(n, 500.0)
        capacity[lull] = 300.0
        sites = (SiteCapacity("a", 1000, capacity),)
        apps = (
            make_app(0, arrival=0, duration=24),
            make_app(1, arrival=8, duration=16, vms=1, cores=1),
            make_app(2, arrival=16, duration=8, vms=1, cores=1),
        )
        return SchedulingProblem(
            make_grid(n), sites, apps, 1e9, grid_pricing=pricing
        )

    def test_windows_share_the_budget(self):
        pricing = make_pricing(budget=100.0)
        problem = self.lulled_arrivals_problem(pricing)
        scheduler = MIPScheduler(decompose="window:8")
        placement = scheduler.schedule(problem)
        total = sum(
            float(np.sum(series))
            for series in placement.planned_grid_import.values()
        )
        assert total <= 100.0 + 1e-6
        assert scheduler.last_timings.mode == "window"
        assert not scheduler.last_timings.fell_back

    def test_window_state_carries_spend(self):
        pricing = make_pricing(budget=100.0)
        problem = self.lulled_arrivals_problem(pricing)
        state = WindowState(problem)
        plans = plan_windows(24, 8)
        built = build_window_problem(problem, plans[0], state)
        assert built.problem.grid_pricing.budget_mwh["a"] == 100.0
        state.grid_spent_mwh["a"] = 60.0
        built2 = build_window_problem(problem, plans[1], state)
        assert built2.problem.grid_pricing.budget_mwh["a"] == 40.0
        # Spend beyond the budget clamps at zero, never negative.
        state.grid_spent_mwh["a"] = 150.0
        built3 = build_window_problem(problem, plans[2], state)
        assert built3.problem.grid_pricing.budget_mwh["a"] == 0.0

    def test_finite_budget_disables_parallel_windows(self):
        pricing = make_pricing(budget=100.0)
        problem = self.lulled_arrivals_problem(pricing)
        plans = plan_windows(24, 8)
        assert not _windows_separable(problem, plans, None, None)

    def test_windowed_matches_monolithic_quality(self):
        # The lull fits inside window 2, so its solve sees the whole
        # deficit and buys exactly like the monolithic plan (a lull
        # *spanning* seams is legitimately myopic instead: each window
        # re-buys its own slice without seeing the full 16-step cost).
        pricing = make_pricing(budget=1000.0)
        problem = self.lulled_arrivals_problem(
            pricing, lull=slice(8, 16)
        )
        mono = MIPScheduler()
        mono_placement = mono.schedule(problem)
        windowed = MIPScheduler(decompose="window:8")
        win_placement = windowed.schedule(problem)
        mono_obj = placement_objective(problem, mono_placement)
        win_obj = placement_objective(problem, win_placement)
        assert win_obj <= mono_obj * 1.05 + 1e-6

    def test_rolling_scheduler_carries_grid_plan(self):
        pricing = make_pricing(budget=100.0)
        problem = self.lulled_arrivals_problem(pricing)
        placement = RollingMIPScheduler(window_steps=8).schedule(problem)
        assert "a" in placement.planned_grid_import
        total = float(np.sum(placement.planned_grid_import["a"]))
        assert total <= 100.0 + 1e-6


class TestFromSupplySpec:
    def trace(self, n=24):
        values = np.full(n, 0.5)
        return PowerTrace(make_grid(n), values, "w", "wind", 40.0)

    def test_unpriced_spec_returns_none(self):
        spec = SupplySpec(grid_budget_mwh=10.0)
        assert GridPricing.from_supply_spec(
            spec, {"a": self.trace()}, {"a": 400}
        ) is None

    def test_gridless_spec_returns_none(self):
        spec = SupplySpec(battery_mwh=10.0, price_trace="constant",
                          price_per_mwh=50.0)
        assert GridPricing.from_supply_spec(
            spec, {"a": self.trace()}, {"a": 400}
        ) is None

    def test_constant_spec_round_trips(self):
        spec = SupplySpec(
            grid_budget_mwh=10.0, grid_power_mw=5.0,
            price_trace="constant", price_per_mwh=50.0,
            carbon_trace="daily",
        )
        pricing = GridPricing.from_supply_spec(
            spec, {"a": self.trace()}, {"a": 400}, carbon_weight=0.5
        )
        np.testing.assert_array_equal(
            pricing.price_per_mwh, np.full(24, 50.0)
        )
        assert pricing.carbon_per_mwh.min() >= 140.0 - 1e-9
        assert pricing.carbon_per_mwh.max() <= 280.0 + 1e-9
        assert pricing.budget_mwh == {"a": 10.0}
        assert pricing.max_power_mw == {"a": 5.0}
        assert pricing.cores_per_mw == {"a": 400 / 40.0}
        assert pricing.carbon_weight == 0.5

    def test_problem_from_forecasts_excludes_grid_from_firming(self):
        # With pricing the MIP owns the grid: the firmed forecast must
        # not also consume the stack's grid budget (double counting).
        trace = self.trace()
        spec = SupplySpec(
            grid_budget_mwh=50.0, price_trace="constant",
            price_per_mwh=50.0,
        )
        pricing = GridPricing.from_supply_spec(
            spec, {"a": trace}, {"a": 400}
        )
        stack = spec.build(trace)
        apps = (make_app(vms=1, cores=1),)
        with_pricing = problem_from_forecasts(
            trace.grid, {"a": trace}, {"a": 400}, apps,
            PersistenceForecaster(), supply=stack,
            grid_pricing=pricing,
        )
        without = problem_from_forecasts(
            trace.grid, {"a": trace}, {"a": 400}, apps,
            PersistenceForecaster(), supply=stack,
        )
        # The grid-firmed capacity tops up toward the firming target;
        # the battery-only (pricing) capacity cannot exceed it.
        assert with_pricing.grid_pricing is pricing
        assert without.grid_pricing is None
        assert (
            with_pricing.sites[0].capacity_cores.sum()
            <= without.sites[0].capacity_cores.sum()
        )
