"""Tests for the composable supply layer (repro.supply).

Pins three contracts:

- **Golden pass-through**: an empty stack reproduces the legacy
  core-budget path bit for bit, across both engines and both power
  models, in both dispatch modes.
- **Physics**: battery state of charge stays bounded, respects the
  power rating, and conserves energy (charged minus discharged over
  efficiency equals the SoC delta); the grid component never exceeds
  its budget.  A one-battery open-loop stack matches the legacy
  ``smooth_with_battery`` smoothing bitwise.
- **Closed loop helps**: dispatching a battery against live demand
  yields nonzero discharge in dips and strictly fewer evictions than
  the raw trace on the same workload.
"""

from __future__ import annotations

import re
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro import obs
from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    ServerSpec,
)
from repro.errors import ConfigurationError
from repro.experiments import Scenario, WorkloadSpec
from repro.forecast import NoisyOracleForecaster
from repro.multisite import VBSite
from repro.multisite.physical_battery import (
    BatterySpec,
    smooth_with_battery,
)
from repro.sched import problem_from_forecasts
from repro.sim import execute_placement_detailed
from repro.sched import Placement
from repro.supply import (
    NO_SUPPLY,
    BatteryDispatch,
    GridFirmPower,
    SupplySpec,
    SupplyStack,
    supply_stack,
)
from repro.traces import PowerTrace
from repro.units import TimeGrid, grid_days
from repro.workload import (
    Application,
    VMClass,
    VMRequest,
    VMType,
)

START = datetime(2020, 5, 1)


def make_trace(values, capacity_mw=100.0, step_minutes=15):
    grid = TimeGrid(
        START, timedelta(minutes=step_minutes), len(values)
    )
    return PowerTrace(
        grid, np.asarray(values, dtype=float), "t", "wind", capacity_mw
    )


def dippy_trace(n=400, capacity_mw=100.0, seed=7):
    """Noisy generation with hard dips — work for a battery to do."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = np.clip(
        0.55 + 0.4 * np.sin(2 * np.pi * t / 96) + rng.normal(0, 0.1, n),
        0.0,
        1.0,
    )
    values[(t % 120) < 16] = 0.0
    return make_trace(values, capacity_mw)


def small_config(**overrides):
    defaults = dict(
        cluster=ClusterSpec(n_servers=8, server=ServerSpec(cores=10)),
        queue_patience_steps=50,
    )
    defaults.update(overrides)
    return DatacenterConfig(**defaults)


def requests_for(n_steps, count=120, seed=3, cores=2):
    rng = np.random.default_rng(seed)
    vm_type = VMType(f"T{cores}", cores, cores * 4.0)
    return [
        VMRequest(
            i,
            int(rng.integers(0, n_steps)),
            int(rng.integers(4, 120)),
            vm_type,
            VMClass.STABLE if rng.random() < 0.6 else VMClass.DEGRADABLE,
        )
        for i in range(count)
    ]


def battery_stack(capacity_mwh=200.0, power_mw=50.0, **kwargs):
    return SupplyStack(
        (BatteryDispatch(capacity_mwh, power_mw, **kwargs),)
    )


# ----------------------------------------------------------------------
# Component physics
# ----------------------------------------------------------------------


class TestBatteryDispatch:
    def test_soc_stays_bounded_and_power_limited(self):
        battery = BatteryDispatch(
            capacity_mwh=10.0, max_power_mw=5.0, efficiency=0.9
        )
        state = battery.initial_state()
        rng = np.random.default_rng(0)
        h = 0.25
        for _ in range(2000):
            balance = float(rng.normal(0, 20))
            delta = battery.step(state, balance, h)
            # The discharge arithmetic (soc -= discharged / eff) can
            # undershoot zero by an ulp, exactly like the legacy
            # smooth_with_battery loop it mirrors.
            assert -1e-9 <= state.soc_mwh <= battery.capacity_mwh + 1e-12
            assert abs(delta) <= battery.max_power_mw + 1e-12
            if balance >= 0:
                assert delta <= 0.0  # absorbs, never emits, on surplus
                assert -delta <= balance + 1e-12
            else:
                # An ulp-negative SoC makes deliverable energy (and so
                # the returned delta) ulp-negative too; same tolerance.
                assert delta >= -1e-9
                assert delta <= -balance + 1e-12

    def test_energy_conservation(self):
        """charged - discharged/eff == SoC delta, step by step sum."""
        battery = BatteryDispatch(
            capacity_mwh=8.0, max_power_mw=4.0, efficiency=0.85
        )
        state = battery.initial_state()
        soc_start = state.soc_mwh
        rng = np.random.default_rng(1)
        h = 0.25
        charged = discharged = 0.0
        for _ in range(3000):
            delta = battery.step(state, float(rng.normal(0, 10)), h)
            if delta < 0:
                charged += -delta * h
            else:
                discharged += delta * h
        assert state.soc_mwh == pytest.approx(
            soc_start + charged - discharged / battery.efficiency
        )

    def test_full_battery_rejects_charge(self):
        battery = BatteryDispatch(
            capacity_mwh=2.0, max_power_mw=100.0,
            initial_charge_fraction=1.0,
        )
        state = battery.initial_state()
        assert battery.step(state, 50.0, 1.0) == 0.0
        assert state.soc_mwh == 2.0

    def test_empty_battery_cannot_discharge(self):
        battery = BatteryDispatch(
            capacity_mwh=2.0, max_power_mw=100.0,
            initial_charge_fraction=0.0,
        )
        state = battery.initial_state()
        assert battery.step(state, -50.0, 1.0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity_mwh=-1.0, max_power_mw=1.0),
            dict(capacity_mwh=1.0, max_power_mw=0.0),
            dict(capacity_mwh=1.0, max_power_mw=1.0, efficiency=0.0),
            dict(capacity_mwh=1.0, max_power_mw=1.0, efficiency=1.1),
            dict(
                capacity_mwh=1.0, max_power_mw=1.0,
                initial_charge_fraction=1.5,
            ),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatteryDispatch(**kwargs)


class TestGridFirmPower:
    def test_budget_is_never_exceeded(self):
        grid = GridFirmPower(budget_mwh=5.0)
        state = grid.initial_state()
        drawn = 0.0
        for _ in range(100):
            delta = grid.step(state, -10.0, 0.25)
            drawn += delta * 0.25
        assert drawn == pytest.approx(5.0)
        assert state.remaining_mwh == pytest.approx(0.0)
        assert grid.step(state, -10.0, 0.25) == 0.0

    def test_never_absorbs_surplus(self):
        grid = GridFirmPower(budget_mwh=5.0)
        state = grid.initial_state()
        assert grid.step(state, 10.0, 0.25) == 0.0
        assert state.remaining_mwh == 5.0

    def test_power_limit_caps_draw(self):
        grid = GridFirmPower(budget_mwh=100.0, max_power_mw=2.0)
        state = grid.initial_state()
        assert grid.step(state, -10.0, 0.25) == 2.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GridFirmPower(budget_mwh=-1.0)
        with pytest.raises(ConfigurationError):
            GridFirmPower(budget_mwh=1.0, max_power_mw=0.0)


# ----------------------------------------------------------------------
# Open loop: golden pass-through and legacy smoothing equivalence
# ----------------------------------------------------------------------


class TestOpenLoopGolden:
    def test_empty_stack_delivers_the_trace_array_itself(self):
        trace = dippy_trace()
        evaluation = SupplyStack().evaluate_open_loop(trace)
        assert evaluation.delivered is trace.values
        assert SupplyStack().apply(trace) is trace

    @pytest.mark.parametrize("engine", ["event", "dense"])
    @pytest.mark.parametrize("power_model", ["linear", "server"])
    @pytest.mark.parametrize("mode", ["closed", "open"])
    def test_empty_stack_simulation_is_bit_identical(
        self, engine, power_model, mode
    ):
        """The legacy no-supply run is reproduced exactly."""
        trace = dippy_trace()
        requests = requests_for(len(trace))
        config = small_config(power_model=power_model)
        legacy = Datacenter(config, trace).run(requests, engine=engine)
        stacked = Datacenter(
            config, trace, supply=SupplyStack(), supply_mode=mode
        ).run(requests, engine=engine)
        for column in (
            "norm_power", "core_budget", "n_evicted", "n_paused",
            "out_bytes", "in_bytes", "running_cores",
        ):
            np.testing.assert_array_equal(
                getattr(legacy.columns, column),
                getattr(stacked.columns, column),
            )
        assert stacked.supply is None
        assert "supply" not in stacked.summary_dict()["sites"]["t"]

    def test_one_battery_stack_matches_smooth_with_battery(self):
        """Open-loop battery dispatch is the legacy smoothing, bitwise."""
        trace = dippy_trace(n=700)
        spec = BatterySpec(
            capacity_mwh=60.0, max_power_mw=25.0,
            round_trip_efficiency=0.85, initial_charge_fraction=0.3,
        )
        legacy = smooth_with_battery(trace, spec, target_fraction=0.6)
        stack = SupplyStack(
            (
                BatteryDispatch(
                    capacity_mwh=60.0, max_power_mw=25.0,
                    efficiency=0.85, initial_charge_fraction=0.3,
                ),
            ),
            target_fraction=0.6,
        )
        evaluation = stack.evaluate_open_loop(trace)
        np.testing.assert_array_equal(
            legacy.output.values, evaluation.delivered
        )
        np.testing.assert_array_equal(
            legacy.state_of_charge_mwh, evaluation.soc_mwh
        )
        assert legacy.charged_mwh == pytest.approx(
            evaluation.charge_total_mwh
        )
        assert legacy.discharged_mwh == pytest.approx(
            evaluation.discharge_total_mwh
        )

    def test_vbsite_core_budget_series_accepts_stack(self):
        from repro.traces import Site

        trace = dippy_trace()
        site = VBSite(
            Site("t", "wind", 50.0, 5.0, trace.capacity_mw), trace,
            ClusterSpec(n_servers=10, server=ServerSpec(cores=40)),
        )
        assert site.core_budget_series() == site.core_budget_series(
            SupplyStack()
        )
        firmed = site.core_budget_series(battery_stack())
        assert len(firmed) == len(trace)
        # Firming fills dips: the worst step can only improve.
        assert min(firmed) >= min(site.core_budget_series())

    def test_apply_names_the_firmed_trace(self):
        trace = dippy_trace()
        firmed = battery_stack().apply(trace)
        assert firmed.name == "t+supply"
        assert firmed.capacity_mw == trace.capacity_mw
        assert len(firmed) == len(trace)

    def test_bad_target_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SupplyStack((), target_fraction=0.0)
        with pytest.raises(ConfigurationError):
            supply_stack([], target_fraction=2.5)


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------


class TestClosedLoop:
    def test_battery_discharges_and_cuts_evictions(self):
        """The acceptance property: fewer evictions, nonzero discharge."""
        trace = dippy_trace()
        requests = requests_for(len(trace), count=200)
        config = small_config()
        bare = Datacenter(config, trace).run(requests)
        backed = Datacenter(
            config, trace, supply=battery_stack()
        ).run(requests)
        assert backed.supply is not None
        assert backed.supply.discharge_total_mwh > 0.0
        assert (
            backed.columns.n_evicted.sum()
            < bare.columns.n_evicted.sum()
        )

    @pytest.mark.parametrize("power_model", ["linear", "server"])
    def test_engines_agree_under_closed_loop(self, power_model):
        trace = dippy_trace()
        requests = requests_for(len(trace), count=200)
        config = small_config(power_model=power_model)
        stack = battery_stack()
        event = Datacenter(config, trace, supply=stack).run(
            requests, engine="event"
        )
        dense = Datacenter(config, trace, supply=stack).run(
            requests, engine="dense"
        )
        for column in (
            "norm_power", "core_budget", "n_evicted", "out_bytes",
            "in_bytes",
        ):
            np.testing.assert_array_equal(
                getattr(event.columns, column),
                getattr(dense.columns, column),
            )
        np.testing.assert_array_equal(
            event.supply.soc_mwh, dense.supply.soc_mwh
        )
        np.testing.assert_array_equal(
            event.supply.delivered, dense.supply.delivered
        )

    def test_soc_bounded_over_the_run(self):
        trace = dippy_trace()
        stack = battery_stack(capacity_mwh=40.0, power_mw=20.0)
        result = Datacenter(small_config(), trace, supply=stack).run(
            requests_for(len(trace))
        )
        assert np.all(result.supply.soc_mwh >= -1e-12)
        assert np.all(result.supply.soc_mwh <= 40.0 + 1e-12)

    def test_grid_budget_respected_in_loop(self):
        trace = dippy_trace()
        stack = SupplyStack((GridFirmPower(budget_mwh=3.0),))
        result = Datacenter(small_config(), trace, supply=stack).run(
            requests_for(len(trace), count=200)
        )
        assert 0.0 < result.supply.grid_import_total_mwh <= 3.0 + 1e-9

    def test_summary_dict_carries_the_supply_block(self):
        trace = dippy_trace()
        result = Datacenter(
            small_config(), trace, supply=battery_stack()
        ).run(requests_for(len(trace)))
        block = result.summary_dict()["sites"]["t"]["supply"]
        from repro.sim import SUMMARY_SCHEMA

        assert set(block) == set(SUMMARY_SCHEMA["per_site_supply"])

    def test_open_mode_uses_the_precomputed_series(self):
        """Open mode budgets come from the firmed series, not demand."""
        trace = dippy_trace()
        stack = battery_stack()
        result = Datacenter(
            small_config(), trace, supply=stack, supply_mode="open"
        ).run(requests_for(len(trace)))
        expected = stack.evaluate_open_loop(trace)
        np.testing.assert_array_equal(
            result.columns.norm_power, expected.delivered
        )

    def test_unknown_supply_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Datacenter(
                small_config(), dippy_trace(),
                supply=battery_stack(), supply_mode="sideways",
            )

    def test_supply_counters_reach_obs(self):
        trace = dippy_trace()
        with obs.use(obs.MemorySink()) as mem:
            Datacenter(
                small_config(), trace, supply=battery_stack()
            ).run(requests_for(len(trace)))
        names = {m["name"] for m in mem.metrics()}
        assert {
            "supply.charge_mwh",
            "supply.discharge_mwh",
            "supply.curtailed_mwh",
            "supply.final_soc_mwh",
        } <= names


# ----------------------------------------------------------------------
# Scheduler and detailed executor integration
# ----------------------------------------------------------------------


def planning_setup(n=48, supply=None):
    grid = TimeGrid(START, timedelta(hours=1), n)
    rng = np.random.default_rng(5)
    values = np.clip(
        0.5 + 0.4 * np.sin(2 * np.pi * np.arange(n) / 24)
        + rng.normal(0, 0.05, n),
        0.0,
        1.0,
    )
    values[10:16] = 0.0
    traces = {
        "a": PowerTrace(grid, values, "a", "wind", 40.0),
        "b": PowerTrace(grid, values[::-1].copy(), "b", "wind", 40.0),
    }
    apps = [
        Application(i, 0, n, 10, VMType("T2", 2, 8.0), 1.0)
        for i in range(3)
    ]
    problem = problem_from_forecasts(
        grid, traces, {"a": 400, "b": 400}, apps,
        NoisyOracleForecaster(seed=0), supply=supply,
    )
    return problem, traces


class TestSchedulerIntegration:
    def test_empty_stack_leaves_capacities_unchanged(self):
        bare, _ = planning_setup()
        stacked, _ = planning_setup(supply=SupplyStack())
        for site_bare, site_stacked in zip(bare.sites, stacked.sites):
            np.testing.assert_array_equal(
                site_bare.capacity_cores, site_stacked.capacity_cores
            )

    def test_battery_firms_the_planning_capacities(self):
        bare, _ = planning_setup()
        firmed, _ = planning_setup(
            supply=battery_stack(capacity_mwh=80.0, power_mw=20.0)
        )
        for site_bare, site_firmed in zip(bare.sites, firmed.sites):
            assert (
                site_firmed.capacity_cores.min()
                >= site_bare.capacity_cores.min()
            )
        # Somewhere the battery lifted a dead forecast step.
        assert any(
            site_firmed.capacity_cores.sum()
            != site_bare.capacity_cores.sum()
            for site_bare, site_firmed in zip(bare.sites, firmed.sites)
        )

    def test_per_site_mapping_selects_stacks(self):
        stack = battery_stack(capacity_mwh=80.0, power_mw=20.0)
        mixed, _ = planning_setup(supply={"a": stack})
        bare, _ = planning_setup()
        np.testing.assert_array_equal(
            mixed.sites[1].capacity_cores, bare.sites[1].capacity_cores
        )


class TestDetailedExecutorIntegration:
    @pytest.mark.parametrize("engine", ["event", "dense"])
    def test_closed_loop_supply_threads_through(self, engine):
        stack = battery_stack(capacity_mwh=30.0, power_mw=15.0)
        problem, traces = planning_setup(supply=stack)
        placement = Placement(
            {0: {"a": 10}, 1: {"b": 10}, 2: {"a": 5, "b": 5}}
        )
        cluster = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))
        result = execute_placement_detailed(
            problem, placement, traces, cluster,
            engine=engine, supply=stack,
        )
        assert set(result.supply) == {"a", "b"}
        per_site = result.summary_dict()["sites"]
        for name in ("a", "b"):
            assert result.supply[name].discharge_total_mwh >= 0.0
            assert np.all(
                result.supply[name].soc_mwh <= 30.0 + 1e-12
            )
            assert "supply" in per_site[name]

    def test_engines_agree_with_supply(self):
        stack = battery_stack(capacity_mwh=30.0, power_mw=15.0)
        problem, traces = planning_setup(supply=stack)
        placement = Placement(
            {0: {"a": 10}, 1: {"b": 10}, 2: {"a": 5, "b": 5}}
        )
        cluster = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))
        results = [
            execute_placement_detailed(
                problem, placement, traces, cluster,
                engine=engine, supply=stack,
            )
            for engine in ("event", "dense")
        ]
        for name in ("a", "b"):
            np.testing.assert_array_equal(
                results[0].out_bytes_series(name),
                results[1].out_bytes_series(name),
            )
            np.testing.assert_array_equal(
                results[0].supply[name].soc_mwh,
                results[1].supply[name].soc_mwh,
            )


# ----------------------------------------------------------------------
# Spec and scenario plumbing
# ----------------------------------------------------------------------


class TestSupplySpec:
    def test_disabled_by_default(self):
        assert not SupplySpec().enabled
        assert SupplySpec().build().stateless
        assert not NO_SUPPLY.enabled

    def test_battery_power_defaults_to_four_hour_system(self):
        (battery,) = SupplySpec(battery_mwh=100.0).components()
        assert battery.max_power_mw == pytest.approx(25.0)

    def test_component_order_battery_then_grid(self):
        spec = SupplySpec(battery_mwh=10.0, grid_budget_mwh=5.0)
        battery, grid = spec.components()
        assert isinstance(battery, BatteryDispatch)
        assert isinstance(grid, GridFirmPower)

    def test_round_trip(self):
        spec = SupplySpec(
            battery_mwh=100.0, battery_power_mw=30.0,
            grid_budget_mwh=12.0, mode="open", target_fraction=0.7,
        )
        assert SupplySpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            SupplySpec.from_dict({"flux_capacitor_gw": 1.21})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SupplySpec(mode="diagonal")
        with pytest.raises(ConfigurationError):
            SupplySpec(battery_mwh=-1.0)
        with pytest.raises(ConfigurationError):
            SupplySpec(grid_budget_mwh=-1.0)


class TestScenarioSupply:
    def scenario(self, **supply_kwargs):
        return Scenario(
            name="s",
            sites=("BE-wind",),
            grid=grid_days(START, 2),
            workload=WorkloadSpec(kind="vm_requests"),
            supply=SupplySpec(**supply_kwargs),
        )

    def test_supply_changes_the_content_hash(self):
        assert (
            self.scenario().content_hash()
            != self.scenario(battery_mwh=100.0).content_hash()
        )

    def test_round_trip_preserves_supply(self):
        scenario = self.scenario(battery_mwh=100.0, mode="open")
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_from_dict_tolerates_missing_supply(self):
        data = self.scenario().to_dict()
        del data["supply"]
        assert Scenario.from_dict(data).supply == SupplySpec()

    def test_forecast_fragment_carries_supply(self):
        fragment = self.scenario(battery_mwh=9.0).forecast_fragment()
        assert fragment["supply"]["battery_mwh"] == 9.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _metric(out, label):
    match = re.search(
        rf"^{re.escape(label)}\s+([\d,.]+)", out, re.MULTILINE
    )
    assert match, f"no {label!r} row in:\n{out}"
    return float(match.group(1).replace(",", ""))


class TestSupplyCli:
    def test_battery_flag_cuts_evictions(self, capsys):
        from repro.cli import main

        base_args = [
            "simulate", "--kind", "wind", "--days", "3",
            "--seed", "5", "--no-cache",
        ]
        assert main(base_args) == 0
        bare_out = capsys.readouterr().out
        assert main(base_args + ["--battery-mwh", "800"]) == 0
        backed_out = capsys.readouterr().out

        assert "battery discharge MWh" not in bare_out
        assert _metric(backed_out, "battery discharge MWh") > 0.0
        assert _metric(backed_out, "VM evictions") < _metric(
            bare_out, "VM evictions"
        )

    def test_sweep_accepts_supply_flags(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep", "--mode", "simulate", "--sites", "BE-wind",
                "--days", "2", "--battery-mwh", "150",
                "--jobs", "1", "--backend", "serial",
                "--cache-dir", str(tmp_path / "cache"),
                "--manifest-dir", str(tmp_path / "manifests"),
            ]
        )
        assert code == 0
        assert "Sweep: 1 scenarios" in capsys.readouterr().out


class TestStateSnapshots:
    """Satellite contracts: state to_dict/from_dict + stable series."""

    def test_battery_state_round_trip(self):
        component = BatteryDispatch(10.0, 5.0, efficiency=0.9)
        state = component.initial_state()
        component.step(state, -3.0, 0.25)
        snapshot = state.to_dict()
        assert snapshot == {"soc_mwh": state.soc_mwh}
        clone = type(state).from_dict(snapshot)
        assert clone.soc_mwh == state.soc_mwh
        assert clone is not state

    def test_grid_state_round_trip(self):
        component = GridFirmPower(40.0, max_power_mw=2.0)
        state = component.initial_state()
        component.step(state, -1.0, 0.25)
        snapshot = state.to_dict()
        assert snapshot == {"remaining_mwh": state.remaining_mwh}
        clone = type(state).from_dict(snapshot)
        assert clone.remaining_mwh == state.remaining_mwh

    def test_evaluation_series_fields_are_the_layout(self):
        from repro.supply.stack import SupplyEvaluation

        assert SupplyEvaluation.SERIES_FIELDS == (
            "delivered",
            "soc_mwh",
            "charge_mwh",
            "discharge_mwh",
            "grid_import_mwh",
            "curtailed_mwh",
            "cost_usd",
            "carbon_kg",
        )
        assert SupplyEvaluation.__slots__ == (
            SupplyEvaluation.SERIES_FIELDS
        )
        evaluation = SupplyEvaluation(np.zeros(4))
        for name in SupplyEvaluation.SERIES_FIELDS:
            assert len(getattr(evaluation, name)) == 4


class TestSpanIdleFastPath:
    """A saturated stack ends its dispatch window early (satellite 3)."""

    def test_full_battery_under_surplus_returns_short_prefix(self):
        trace = make_trace(np.full(20_000, 0.9))
        stack = battery_stack(capacity_mwh=5.0, power_mw=50.0)
        dispatcher = stack.dispatcher(trace)
        deliveries, crossed = dispatcher.advance_span(
            0, 20_000, 0.2, None, None
        )
        assert not crossed
        # The battery fills within a handful of steps; the window must
        # not grind through all 20k steps afterwards.
        assert len(deliveries) < 50
        assert dispatcher.pinned(surplus=True)
        assert dispatcher.battery_soc_mwh() == 5.0

    def test_idle_break_matches_per_step_dispatch(self):
        values = np.full(600, 0.8)
        stack = SupplyStack((
            BatteryDispatch(3.0, 10.0, efficiency=0.9),
            GridFirmPower(2.0, max_power_mw=1.0),
        ))
        span = stack.dispatcher(make_trace(values))
        scalar = stack.dispatcher(make_trace(values))
        step = 0
        while step < 600:
            deliveries, _ = span.advance_span(step, 600, 0.3, None, None)
            assert deliveries, "span may not stall"
            step += len(deliveries)
            if span.pinned(surplus=True):
                break
        for t in range(step):
            assert scalar.dispatch(t, 0.3) == span.evaluation.delivered[t]
        assert span.battery_soc_mwh() == scalar.battery_soc_mwh()

    def test_invalidate_base_cache_sees_new_values(self):
        trace = make_trace(np.full(50, 0.6))
        dispatcher = SupplyStack(
            (GridFirmPower(1000.0),)
        ).dispatcher(trace)
        deliveries, _ = dispatcher.advance_span(0, 10, 0.2, None, None)
        assert deliveries[0] == 0.6  # surplus: grid is a pass-through
        trace.values[:] = 0.0
        dispatcher.invalidate_base_cache()
        deliveries, _ = dispatcher.advance_span(10, 20, 0.2, None, None)
        # Base went dark: the deficit is now grid-covered demand, not
        # the stale cached 0.6 pass-through.
        assert deliveries[0] == 0.2
