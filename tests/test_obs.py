"""Tests for repro.obs: spans, metrics, sinks, report, unified API."""

from __future__ import annotations

import contextvars
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timedelta

import pytest

from repro import obs
from repro.cli import main
from repro.experiments import (
    ComputeSpec,
    PolicySpec,
    Runner,
    Scenario,
    WorkloadSpec,
    run_scenario,
)
from repro.sim import SUMMARY_SCHEMA, execute_placement_detailed
from repro.units import TimeGrid, grid_days

START = datetime(2015, 5, 1)


@pytest.fixture(autouse=True)
def _clean_trace_env(monkeypatch):
    """No ambient $REPRO_TRACE and a fresh sink cache per test."""
    monkeypatch.delenv(obs.TRACE_ENV, raising=False)
    obs.reset()
    yield
    obs.reset()


def vm_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="obs-vm",
        sites=("BE-wind",),
        grid=grid_days(START, 2),
        workload=WorkloadSpec(kind="vm_requests"),
        seed=3,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def apps_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="obs-apps",
        sites=("NO-solar", "UK-wind"),
        grid=TimeGrid(START, timedelta(hours=1), 2 * 24),
        workload=WorkloadSpec(count=15, mean_vm_count=8.0),
        policies=(
            PolicySpec("Greedy", "greedy"),
            PolicySpec("MIP", "mip", time_limit_s=10.0),
        ),
        compute=ComputeSpec(cores_per_site=2000),
        seed=7,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestSpans:
    def test_nesting_links_parent_ids(self):
        with obs.use(obs.MemorySink()) as mem:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert obs.current_span_id() == inner.span_id
                assert obs.current_span_id() == outer.span_id
            assert obs.current_span_id() is None
        spans = {r["name"]: r for r in mem.spans()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        # Children complete (and emit) before their parents.
        assert [r["name"] for r in mem.spans()] == ["inner", "outer"]

    def test_exception_sets_error_and_propagates(self):
        with obs.use(obs.MemorySink()) as mem:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("nope")
        record = mem.spans()[0]
        assert record["error"] == "ValueError"
        assert record["wall_s"] >= 0.0

    def test_attrs_and_set_skip_none(self):
        with obs.use(obs.MemorySink()) as mem:
            with obs.span("s", fixed=1) as span:
                span.set(later="x", skipped=None)
        attrs = mem.spans()[0]["attrs"]
        assert attrs == {"fixed": 1, "later": "x"}

    def test_timed_span_measures_without_sinks(self):
        assert not obs.enabled()
        with obs.timed_span("quiet") as span:
            pass
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_metrics_attach_to_open_span(self):
        with obs.use(obs.MemorySink()) as mem:
            with obs.span("ctx") as span:
                obs.count("hits", 2, kind="x")
                obs.gauge("level", 0.5)
                obs.observe("latency", 1.25)
        kinds = [r["type"] for r in mem.metrics()]
        assert kinds == ["counter", "gauge", "histogram"]
        assert all(
            r["span_id"] == span.span_id for r in mem.metrics()
        )

    def test_thread_worker_attribution(self):
        mem = obs.MemorySink()

        def work():
            with obs.span("in-thread"):
                pass

        with obs.use(mem):
            ctx = contextvars.copy_context()
            with ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="obs-test"
            ) as pool:
                pool.submit(ctx.run, work).result()
            with obs.span("in-main"):
                pass
        by_name = {r["name"]: r for r in mem.spans()}
        assert by_name["in-thread"]["worker"].startswith(
            "thread:obs-test"
        )
        if threading.current_thread() is threading.main_thread():
            assert by_name["in-main"]["worker"] is None


class TestNoopPath:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not obs.enabled()
        first = obs.span("a", big=1)
        second = obs.span("b")
        assert first is obs.NOOP_SPAN
        assert second is obs.NOOP_SPAN
        with first:
            assert obs.current_span_id() is None
        assert first.set(x=1) is obs.NOOP_SPAN

    def test_disabled_metrics_are_noops(self):
        obs.count("nothing", 10)
        obs.gauge("nothing", 1.0)
        obs.observe("nothing", 2.0)

    def test_enabled_flips_with_sinks(self):
        assert not obs.enabled()
        with obs.use(obs.MemorySink()):
            assert obs.enabled()
            assert obs.span("live") is not obs.NOOP_SPAN
        assert not obs.enabled()

    def test_add_sink_stacks(self):
        first = obs.MemorySink()
        second = obs.MemorySink()
        with obs.use(first):
            with obs.add_sink(second):
                with obs.span("both"):
                    pass
            with obs.span("only-first"):
                pass
        assert [r["name"] for r in first.spans()] == [
            "both", "only-first",
        ]
        assert [r["name"] for r in second.spans()] == ["both"]


class TestJsonlSink:
    def test_round_trip_matches_memory(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        mem = obs.MemorySink()
        with obs.use(obs.JsonlSink(path), mem):
            with obs.span("outer", n=3):
                obs.count("points", 2)
        obs.reset()
        loaded = obs.load_trace(path)
        assert loaded == mem.records

    def test_env_var_installs_sink(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(obs.TRACE_ENV, str(path))
        obs.reset()
        assert obs.enabled()
        with obs.span("ambient"):
            pass
        obs.reset()  # closes the file
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert records[0]["name"] == "ambient"


class TestReport:
    def test_render_tree_and_metrics(self):
        with obs.use(obs.MemorySink()) as mem:
            with obs.span("parent"):
                with obs.span("child"):
                    obs.count("widgets", 3)
                    obs.gauge("depth", 2.0)
                    obs.observe("size", 1.0)
                    obs.observe("size", 3.0)
        text = obs.render_report(mem.records, top=1)
        assert "parent" in text and "child" in text
        tree_lines = [
            line for line in text.splitlines() if "child" in line
        ]
        assert any(line.startswith("  ") for line in tree_lines)
        assert "widgets" in text
        assert "depth" in text
        assert "size" in text

    def test_load_trace_rejects_unknown(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"no": "trace"}))
        with pytest.raises(ValueError):
            obs.load_trace(path)


class TestPipelineInstrumentation:
    def test_manifest_carries_trace_spans(self, tmp_path):
        result = Runner(vm_scenario(), use_cache=False).run()
        names = [
            r["name"]
            for r in result.manifest.trace
            if r["type"] == "span"
        ]
        assert any(n.startswith("run:") for n in names)
        assert "stage:traces" in names
        assert "stage:simulate:BE-wind" in names
        assert "datacenter.run" in names
        counters = {
            r["name"]
            for r in result.manifest.trace
            if r["type"] == "counter"
        }
        assert "sim.wakes" in counters

    def test_trace_round_trips_through_manifest_json(self, tmp_path):
        result = Runner(
            vm_scenario(), use_cache=False, manifest_dir=tmp_path
        ).run()
        from repro.experiments import RunManifest

        loaded = RunManifest.read(result.manifest_path)
        assert loaded.trace == result.manifest.trace
        assert loaded.to_dict() == result.manifest.to_dict()

    def test_mip_spans_and_timings_agree(self, tmp_path):
        mem = obs.MemorySink()
        with obs.use(mem):
            result = Runner(apps_scenario(), use_cache=False).run()
        assert result.comparison is not None
        spans = {r["name"] for r in mem.spans()}
        assert {"mip.schedule", "mip.assemble", "mip.solve"} <= spans
        schedule = next(
            r for r in mem.spans() if r["name"] == "mip.schedule"
        )
        children = [
            r
            for r in mem.spans()
            if r.get("parent_id") == schedule["span_id"]
        ]
        assert {r["name"] for r in children} == {
            "mip.assemble", "mip.solve",
        }
        assert (
            sum(r["wall_s"] for r in children) <= schedule["wall_s"]
        )

    def test_cache_counters(self, tmp_path):
        cache_dir = tmp_path / "cache"
        scenario = vm_scenario()
        mem = obs.MemorySink()
        with obs.use(mem):
            from repro.experiments import ArtifactCache

            run_scenario(scenario, cache=ArtifactCache(cache_dir))
            run_scenario(scenario, cache=ArtifactCache(cache_dir))
        names = [r["name"] for r in mem.metrics()]
        assert "cache.miss" in names
        assert "cache.hit" in names


class TestUnifiedAPI:
    def test_facade_exports(self):
        import repro

        for name in (
            "Scenario", "Runner", "RunResult", "run_scenario",
            "run_scenarios", "ArtifactCache", "SUMMARY_SCHEMA", "obs",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_run_scenario_equals_runner_run(self):
        scenario = vm_scenario()
        via_function = run_scenario(scenario, use_cache=False)
        via_runner = Runner(scenario, use_cache=False).run()
        assert (
            via_function.manifest.summary == via_runner.manifest.summary
        )
        assert [s.name for s in via_function.manifest.stages] == [
            s.name for s in via_runner.manifest.stages
        ]
        assert (
            via_function.simulations["BE-wind"].summary_dict()
            == via_runner.simulations["BE-wind"].summary_dict()
        )

    def test_summary_schema_shared_across_result_classes(self):
        vm_result = run_scenario(vm_scenario(), use_cache=False)
        apps_result = run_scenario(apps_scenario(), use_cache=False)
        detailed = execute_placement_detailed(
            apps_result.problem,
            apps_result.placements["Greedy"],
            apps_result.traces,
        )
        summaries = [
            vm_result.simulations["BE-wind"].summary_dict(),
            apps_result.executions["Greedy"].summary_dict(),
            detailed.summary_dict(),
        ]
        for summary in summaries:
            for key in SUMMARY_SCHEMA["top_level"]:
                assert key in summary, key
            assert summary["total_transfer_gb"] >= 0.0
            assert summary["peak_step_gb"] >= 0.0
            assert summary["sites"]
            for per_site in summary["sites"].values():
                for key in SUMMARY_SCHEMA["per_site"]:
                    assert key in per_site, key


class TestCli:
    def test_trace_out_and_report(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "simulate", "--kind", "wind", "--days", "2",
                "--no-cache", "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        assert trace_path.exists()
        capsys.readouterr()
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "datacenter.run" in out
        assert "sim.wakes" in out
        assert "Top" in out

    def test_report_reads_manifest_json(self, tmp_path, capsys):
        code = main(
            [
                "simulate", "--kind", "wind", "--days", "2",
                "--no-cache", "--manifest-dir", str(tmp_path),
            ]
        )
        assert code == 0
        manifest = next(tmp_path.glob("manifest_*.json"))
        capsys.readouterr()
        assert main(["report", str(manifest), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "stage:simulate:BE-wind" in out
