"""Tests for repro.units: time grids and unit conversions."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TimeGridError
from repro.units import (
    TimeGrid,
    bytes_to_gb,
    gb_to_bytes,
    gbps_to_bytes_per_second,
    gib_to_bytes,
    grid_days,
    joules_to_mwh,
    mw_to_watts,
    mwh_to_joules,
    transfer_seconds,
    watts_to_mw,
)

START = datetime(2020, 5, 1)
STEP = timedelta(minutes=15)


class TestTimeGridConstruction:
    def test_valid_grid(self):
        grid = TimeGrid(START, STEP, 96)
        assert grid.n == 96
        assert grid.step_seconds == 900.0
        assert grid.step_hours == 0.25

    def test_zero_length_grid_allowed(self):
        grid = TimeGrid(START, STEP, 0)
        assert grid.duration == timedelta(0)
        assert list(grid.times()) == []

    def test_negative_length_rejected(self):
        with pytest.raises(TimeGridError):
            TimeGrid(START, STEP, -1)

    def test_nonpositive_step_rejected(self):
        with pytest.raises(TimeGridError):
            TimeGrid(START, timedelta(0), 10)
        with pytest.raises(TimeGridError):
            TimeGrid(START, timedelta(minutes=-5), 10)

    def test_grid_days_constructor(self):
        grid = grid_days(START, 7)
        assert grid.n == 7 * 96
        assert grid.end == START + timedelta(days=7)

    def test_grid_days_hourly(self):
        grid = grid_days(START, 2, step_minutes=60)
        assert grid.n == 48


class TestTimeGridIndexing:
    def test_time_at_roundtrip(self):
        grid = TimeGrid(START, STEP, 96)
        for index in (0, 1, 50, 95):
            assert grid.index_at(grid.time_at(index)) == index

    def test_time_at_negative_index(self):
        grid = TimeGrid(START, STEP, 96)
        assert grid.time_at(-1) == grid.time_at(95)

    def test_time_at_out_of_range(self):
        grid = TimeGrid(START, STEP, 96)
        with pytest.raises(TimeGridError):
            grid.time_at(96)

    def test_index_at_interval_interior(self):
        grid = TimeGrid(START, STEP, 96)
        assert grid.index_at(START + timedelta(minutes=7)) == 0
        assert grid.index_at(START + timedelta(minutes=15)) == 1

    def test_index_at_before_start(self):
        grid = TimeGrid(START, STEP, 96)
        with pytest.raises(TimeGridError):
            grid.index_at(START - timedelta(seconds=1))

    def test_index_at_end_exclusive(self):
        grid = TimeGrid(START, STEP, 96)
        with pytest.raises(TimeGridError):
            grid.index_at(grid.end)

    def test_times_iterates_all(self):
        grid = TimeGrid(START, STEP, 4)
        times = list(grid.times())
        assert len(times) == 4
        assert times[0] == START
        assert times[3] == START + 3 * STEP


class TestTimeGridDerived:
    def test_hour_of_day_wraps(self):
        grid = grid_days(datetime(2020, 5, 1, 23), 1, step_minutes=60)
        hours = grid.hour_of_day()
        assert hours[0] == pytest.approx(23.0)
        assert hours[1] == pytest.approx(0.0)

    def test_day_of_year(self):
        grid = grid_days(datetime(2020, 1, 1), 1, step_minutes=60)
        assert grid.day_of_year()[0] == pytest.approx(0.0)

    def test_subgrid(self):
        grid = TimeGrid(START, STEP, 96)
        sub = grid.subgrid(10, 20)
        assert sub.n == 20
        assert sub.start == grid.time_at(10)
        assert sub.step == grid.step

    def test_subgrid_out_of_range(self):
        grid = TimeGrid(START, STEP, 96)
        with pytest.raises(TimeGridError):
            grid.subgrid(90, 10)

    def test_compatibility(self):
        a = TimeGrid(START, STEP, 96)
        b = TimeGrid(START, STEP, 96)
        c = TimeGrid(START, STEP, 95)
        assert a.compatible_with(b)
        assert not a.compatible_with(c)
        with pytest.raises(TimeGridError):
            a.require_compatible(c)

    def test_steps_per_day(self):
        assert TimeGrid(START, STEP, 96).steps_per_day() == 96
        assert TimeGrid(START, timedelta(hours=1), 24).steps_per_day() == 24

    def test_steps_per_day_nondividing(self):
        grid = TimeGrid(START, timedelta(minutes=7), 10)
        with pytest.raises(TimeGridError):
            grid.steps_per_day()

    @given(st.integers(min_value=1, max_value=500))
    def test_hours_elapsed_length(self, n):
        grid = TimeGrid(START, STEP, n)
        elapsed = grid.hours_elapsed()
        assert len(elapsed) == n
        assert elapsed[0] == 0.0
        if n > 1:
            assert np.all(np.diff(elapsed) > 0)


class TestUnitConversions:
    def test_mw_watts_roundtrip(self):
        assert watts_to_mw(mw_to_watts(3.5)) == pytest.approx(3.5)

    def test_mwh_joules_roundtrip(self):
        assert joules_to_mwh(mwh_to_joules(42.0)) == pytest.approx(42.0)

    def test_gb_bytes_roundtrip(self):
        assert bytes_to_gb(gb_to_bytes(7.25)) == pytest.approx(7.25)

    def test_gib_is_binary(self):
        assert gib_to_bytes(1) == 2**30

    def test_gbps_conversion(self):
        # 8 Gbps == 1e9 bytes/second.
        assert gbps_to_bytes_per_second(8) == pytest.approx(1e9)

    def test_transfer_seconds_paper_example(self):
        # Paper §3: 10 TB in 5 minutes needs ~200+ Gbps; check 10 TB over
        # a 200 Gbps link lands near 400 s (same ballpark, paper rounds).
        seconds = transfer_seconds(10e12, 200)
        assert 300 < seconds < 500

    def test_transfer_seconds_rejects_zero_link(self):
        with pytest.raises(ValueError):
            transfer_seconds(1e9, 0)

    @given(st.floats(min_value=0.001, max_value=1e6))
    def test_energy_conversion_monotone(self, mwh):
        assert joules_to_mwh(mwh_to_joules(mwh)) == pytest.approx(mwh)
