"""Tests for the WAN substrate: topology, max-min sharing, simulation."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.units import TimeGrid
from repro.wan import (
    FlowResult,
    MigrationFlow,
    WanSimulator,
    WanTopology,
    flows_from_execution,
)
from repro.wan.simulator import _max_min_rates

GBPS = 1e9 / 8.0  # bytes per second


def topo(sites=("a", "b", "c"), access=10.0, backbone=100.0, **kw):
    return WanTopology(tuple(sites), access, backbone, **kw)


def flow(fid=0, src="a", dst="b", size=10 * GBPS, release=0):
    return MigrationFlow(fid, src, dst, size, release)


class TestTopology:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WanTopology(())
        with pytest.raises(ConfigurationError):
            WanTopology(("a", "a"))
        with pytest.raises(ConfigurationError):
            WanTopology(("a",), access_gbps=0.0)
        with pytest.raises(ConfigurationError):
            WanTopology(("a",), per_site_access={"zz": 5.0})
        with pytest.raises(ConfigurationError):
            WanTopology(("a",), per_site_access={"a": 0.0})

    def test_access_rates(self):
        topology = topo(per_site_access={"b": 40.0})
        assert topology.access_bytes_per_second("a") == pytest.approx(
            10.0 * GBPS
        )
        assert topology.access_bytes_per_second("b") == pytest.approx(
            40.0 * GBPS
        )
        with pytest.raises(ConfigurationError):
            topology.access_bytes_per_second("zz")


class TestFlows:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationFlow(0, "a", "a", 1.0, 0)
        with pytest.raises(ConfigurationError):
            MigrationFlow(0, "a", "b", 0.0, 0)
        with pytest.raises(ConfigurationError):
            MigrationFlow(0, "a", "b", 1.0, -1)

    def test_deadline_check(self):
        result = FlowResult(flow(), 0.0, 100.0, True)
        assert result.meets_deadline(100.0)
        assert not result.meets_deadline(99.0)
        incomplete = FlowResult(flow(), 0.0, float("inf"), False)
        assert not incomplete.meets_deadline(1e12)


class TestMaxMinRates:
    def test_single_flow_gets_access_rate(self):
        rates = _max_min_rates([flow()], topo())
        assert rates[0] == pytest.approx(10.0 * GBPS)

    def test_two_flows_share_uplink(self):
        flows = [flow(0, "a", "b"), flow(1, "a", "c")]
        rates = _max_min_rates(flows, topo())
        np.testing.assert_allclose(rates, [5.0 * GBPS, 5.0 * GBPS])

    def test_two_flows_share_downlink(self):
        flows = [flow(0, "a", "c"), flow(1, "b", "c")]
        rates = _max_min_rates(flows, topo())
        np.testing.assert_allclose(rates, [5.0 * GBPS, 5.0 * GBPS])

    def test_disjoint_flows_full_rate(self):
        flows = [flow(0, "a", "b"), flow(1, "c", "d")]
        rates = _max_min_rates(flows, topo(sites=("a", "b", "c", "d")))
        np.testing.assert_allclose(rates, [10.0 * GBPS, 10.0 * GBPS])

    def test_backbone_binds(self):
        topology = topo(
            sites=("a", "b", "c", "d"), access=10.0, backbone=10.0
        )
        flows = [flow(0, "a", "b"), flow(1, "c", "d")]
        rates = _max_min_rates(flows, topology)
        np.testing.assert_allclose(rates, [5.0 * GBPS, 5.0 * GBPS])

    def test_max_min_fairness_unfrozen_flow_gets_more(self):
        # Two flows from a (share its 10G uplink), one from c with a
        # fat pipe to d: the third should get its full 40G.
        topology = topo(
            sites=("a", "b", "c", "d"), access=10.0, backbone=100.0,
            per_site_access={"c": 40.0, "d": 40.0},
        )
        flows = [flow(0, "a", "b"), flow(1, "a", "b"), flow(2, "c", "d")]
        rates = _max_min_rates(flows, topology)
        assert rates[0] == pytest.approx(5.0 * GBPS)
        assert rates[1] == pytest.approx(5.0 * GBPS)
        assert rates[2] == pytest.approx(40.0 * GBPS)

    def test_no_flows(self):
        assert len(_max_min_rates([], topo())) == 0

    @given(n_flows=st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_rates_respect_all_constraints(self, n_flows):
        rng = np.random.default_rng(n_flows)
        sites = ("a", "b", "c", "d")
        topology = topo(sites=sites, access=10.0, backbone=25.0)
        flows = []
        for i in range(n_flows):
            src, dst = rng.choice(4, size=2, replace=False)
            flows.append(flow(i, sites[src], sites[dst]))
        rates = _max_min_rates(flows, topology)
        assert np.all(rates >= -1e-9)
        for site in sites:
            up = sum(
                rates[i] for i, f in enumerate(flows) if f.src == site
            )
            down = sum(
                rates[i] for i, f in enumerate(flows) if f.dst == site
            )
            assert up <= 10.0 * GBPS + 1e-3
            assert down <= 10.0 * GBPS + 1e-3
        assert rates.sum() <= 25.0 * GBPS + 1e-3


class TestSimulator:
    def test_single_flow_duration(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        results = simulator.run([flow(size=10 * GBPS)])
        assert results[0].completed
        # size 10*GBPS bytes over a 10 Gbps (= 10*GBPS bytes/s) access
        # link -> exactly 1 second.
        assert results[0].duration_seconds == pytest.approx(1.0)

    def test_release_step_offsets_start(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        results = simulator.run([flow(release=2, size=GBPS)])
        assert results[0].start_seconds == pytest.approx(1800.0)
        assert results[0].completed

    def test_contention_serializes(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        flows = [
            flow(0, "a", "b", 10 * GBPS),
            flow(1, "a", "c", 10 * GBPS),
        ]
        results = simulator.run(flows)
        # Sharing the 10 Gbps uplink, each runs at 5 Gbps: 2 s each.
        for result in results:
            assert result.completed
            assert result.finish_seconds == pytest.approx(2.0)

    def test_early_finisher_frees_bandwidth(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        flows = [
            flow(0, "a", "b", 5 * GBPS),
            flow(1, "a", "c", 10 * GBPS),
        ]
        results = simulator.run(flows)
        # Equal split (5 Gbps each) until the small flow finishes at
        # 1 s; the big one then takes the full 10 Gbps for its
        # remaining 5*GBPS bytes: finish at 1.5 s.
        assert results[0].finish_seconds == pytest.approx(1.0)
        assert results[1].finish_seconds == pytest.approx(1.5)

    def test_horizon_truncates(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        results = simulator.run(
            [flow(size=1000 * GBPS)], horizon_seconds=5.0
        )
        assert not results[0].completed
        assert results[0].finish_seconds == float("inf")

    def test_duplicate_ids_rejected(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        with pytest.raises(ConfigurationError):
            simulator.run([flow(0), flow(0)])

    def test_unknown_site_rejected(self):
        simulator = WanSimulator(topo(), step_seconds=900.0)
        with pytest.raises(ConfigurationError):
            simulator.run([flow(src="zz")])

    def test_step_seconds_validated(self):
        with pytest.raises(ConfigurationError):
            WanSimulator(topo(), step_seconds=0.0)

    def test_paper_sizing_example(self):
        # §3: a 10 TB spike over 200 Gbps needs ~400 s — inside a
        # 5-minute-ish window (the paper rounds to 5 minutes).
        topology = WanTopology(("a", "b"), access_gbps=200.0)
        simulator = WanSimulator(topology, step_seconds=900.0)
        results = simulator.run(
            [MigrationFlow(0, "a", "b", 10e12, 0)]
        )
        assert results[0].completed
        assert 350.0 < results[0].duration_seconds < 450.0


class TestFlowsFromExecution:
    def _execution(self):
        from repro.sched import Placement, SchedulingProblem, SiteCapacity
        from repro.sim import execute_placement
        from repro.workload import Application, VMType

        n = 6
        grid = TimeGrid(datetime(2020, 5, 1), timedelta(hours=1), n)
        cap_a = np.array([100, 100, 0, 0, 100, 100], dtype=float)
        cap_b = np.full(n, 100.0)
        problem = SchedulingProblem(
            grid,
            (
                SiteCapacity("a", 1000, cap_a),
                SiteCapacity("b", 1000, cap_b),
            ),
            (Application(0, 0, n, 10, VMType("T2", 2, 8.0), 1.0),),
            bytes_per_core=2e9,
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        execution = execute_placement(
            problem, placement, {"a": cap_a, "b": cap_b}
        )
        return execution, grid

    def test_flows_generated_for_dip(self):
        execution, grid = self._execution()
        flows = flows_from_execution(execution, grid, min_bytes=1e9)
        # Out at the dip (step 2), back at recovery (step 4).
        assert len(flows) == 2
        out, back = flows
        assert out.src == "a" and out.dst == "b"
        assert out.release_step == 2
        assert back.src == "b" and back.dst == "a"
        assert back.release_step == 4

    def test_flows_feed_simulator(self):
        execution, grid = self._execution()
        flows = flows_from_execution(execution, grid, min_bytes=1e9)
        topology = WanTopology(("a", "b"), access_gbps=200.0)
        simulator = WanSimulator(topology, grid.step_seconds)
        results = simulator.run(flows)
        assert all(r.completed for r in results)

    def test_single_site_rejected(self):
        execution, grid = self._execution()
        from dataclasses import replace

        single = replace(execution, sites=execution.sites[:1])
        with pytest.raises(ConfigurationError):
            flows_from_execution(single, grid)
