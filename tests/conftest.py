"""Shared fixtures for the test suite."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.units import TimeGrid, grid_days


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Point the experiments artifact cache at a per-test directory.

    Keeps test runs from reading or polluting the user's real
    ``~/.cache/repro`` (and from seeing each other's artifacts).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def day_grid() -> TimeGrid:
    """One day at 15-minute resolution (96 samples)."""
    return grid_days(datetime(2020, 5, 3), 1)


@pytest.fixture
def week_grid() -> TimeGrid:
    """One week at 15-minute resolution."""
    return grid_days(datetime(2020, 5, 3), 7)


@pytest.fixture
def month_grid() -> TimeGrid:
    """Thirty days at 15-minute resolution."""
    return grid_days(datetime(2020, 5, 1), 30)


@pytest.fixture
def hourly_week_grid() -> TimeGrid:
    """One week at hourly resolution (EMHIRES-like)."""
    return TimeGrid(datetime(2020, 5, 3), timedelta(hours=1), 7 * 24)
