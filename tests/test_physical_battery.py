"""Tests for the physical battery substrate (§1's comparison point)."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.multisite import (
    BatterySpec,
    battery_capacity_for_stable_parity,
    smooth_with_battery,
)
from repro.multisite.variability import windowed_stable_energy
from repro.traces import PowerTrace, synthesize_wind
from repro.traces.base import aggregate_traces
from repro.units import TimeGrid, grid_days

START = datetime(2020, 5, 1)


def square_trace(high=0.8, low=0.2, period=8, n=96, capacity=400.0):
    values = np.where((np.arange(n) // period) % 2 == 0, high, low)
    grid = TimeGrid(START, timedelta(minutes=15), n)
    return PowerTrace(grid, values, "sq", "wind", capacity)


class TestSpecValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BatterySpec(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            BatterySpec(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            BatterySpec(10.0, 10.0, round_trip_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            BatterySpec(10.0, 10.0, initial_charge_fraction=1.5)


class TestSmoothing:
    def test_zero_capacity_changes_nothing(self):
        trace = square_trace()
        battery = BatterySpec(0.0, 10.0, initial_charge_fraction=0.0)
        result = smooth_with_battery(trace, battery)
        np.testing.assert_allclose(result.output.values, trace.values)
        assert result.charged_mwh == 0.0
        assert result.discharged_mwh == 0.0

    def test_battery_reduces_cov(self):
        trace = square_trace()
        battery = BatterySpec(2000.0, 200.0)
        result = smooth_with_battery(trace, battery)
        assert result.output.cov() < trace.cov()

    def test_energy_conservation_with_losses(self):
        trace = square_trace()
        battery = BatterySpec(2000.0, 200.0, initial_charge_fraction=0.0)
        result = smooth_with_battery(trace, battery)
        delivered = result.output.energy_mwh()
        generated = trace.energy_mwh()
        # Battery cannot create energy: delivered <= generated (losses
        # plus whatever is still stored stay inside).
        assert delivered <= generated + 1e-6
        assert result.losses_mwh >= 0.0

    def test_perfect_efficiency_no_losses(self):
        trace = square_trace()
        battery = BatterySpec(
            2000.0, 200.0, round_trip_efficiency=1.0,
            initial_charge_fraction=0.0,
        )
        result = smooth_with_battery(trace, battery)
        assert result.losses_mwh == pytest.approx(0.0)

    def test_state_of_charge_within_bounds(self):
        trace = square_trace(n=192)
        battery = BatterySpec(500.0, 100.0)
        result = smooth_with_battery(trace, battery)
        assert np.all(result.state_of_charge_mwh >= -1e-9)
        assert np.all(
            result.state_of_charge_mwh <= battery.capacity_mwh + 1e-9
        )

    def test_power_limit_respected(self):
        trace = square_trace(high=1.0, low=0.0)
        battery = BatterySpec(10_000.0, 20.0)  # tiny power rating
        result = smooth_with_battery(trace, battery)
        delta_mw = np.abs(result.output.power_mw() - trace.power_mw())
        assert np.all(delta_mw <= 20.0 + 1e-6)

    def test_target_fraction_validation(self):
        trace = square_trace()
        with pytest.raises(ConfigurationError):
            smooth_with_battery(trace, BatterySpec(10.0, 10.0), 0.0)

    def test_big_battery_raises_stable_energy(self):
        grid = grid_days(START, 6)
        trace = synthesize_wind(grid, seed=5)
        battery = BatterySpec(20_000.0, 5_000.0)
        smoothed = smooth_with_battery(trace, battery).output
        stable_before, _ = windowed_stable_energy(trace, 3.0)
        stable_after, _ = windowed_stable_energy(smoothed, 3.0)
        assert stable_after > stable_before

    @given(
        capacity=st.floats(min_value=0.0, max_value=5000.0),
        efficiency=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_output_always_valid_trace(self, capacity, efficiency):
        trace = square_trace()
        battery = BatterySpec(
            capacity, max(capacity / 4.0, 1.0),
            round_trip_efficiency=efficiency,
        )
        result = smooth_with_battery(trace, battery)
        assert result.output.values.min() >= 0.0
        assert result.output.values.max() <= 1.0


class TestParitySearch:
    def test_parity_capacity_found_for_modest_gap(self):
        grid = grid_days(START, 9)
        site = synthesize_wind(grid, seed=2, name="a")
        partner = synthesize_wind(grid, seed=3, name="b")
        group = aggregate_traces([site, partner], "group")
        capacity = battery_capacity_for_stable_parity(
            site, group, max_capacity_mwh=100_000.0
        )
        # Either a finite capacity matches the group, or even a huge
        # battery cannot (None) — both acceptable; if found it must be
        # positive when the group is genuinely steadier.
        group_stable, group_var = windowed_stable_energy(group, 3.0)
        site_stable, site_var = windowed_stable_energy(site, 3.0)
        group_frac = group_stable / (group_stable + group_var)
        site_frac = site_stable / (site_stable + site_var)
        if group_frac > site_frac:
            assert capacity is None or capacity > 0.0

    def test_parity_zero_when_group_no_better(self):
        grid = grid_days(START, 3)
        site = synthesize_wind(grid, seed=2, name="a")
        capacity = battery_capacity_for_stable_parity(site, site)
        # Matching itself requires (at most) a negligible battery.
        assert capacity is not None
        assert capacity < 1000.0
