"""Golden tests for the SoA step kernel (``engine="soa"``).

:class:`repro.cluster.kernel.StepKernel` re-implements the five
``Datacenter._step`` phases over structure-of-arrays state — VM and
server attributes as parallel arrays indexed by integers instead of
object graphs.  The object model stays the golden reference: these
tests pin the kernel bit-identical (per-step columns, event logs,
supply telemetry, summaries) across allocation policies, eviction
orders, power models, pause behaviour, and open/closed supply loops.

Also here: the closed-form launch-wake-threshold inversion
(:func:`repro.cluster.admission.min_budget_for_cap`) pinned against a
reference scan, and the ``sim.phase.*`` timing counters.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro import obs
from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    ServerSpec,
)
from repro.cluster.admission import min_budget_for_cap
from repro.cluster.datacenter import StepColumns
from repro.cluster.migration import EvictionOrder
from repro.supply import BatteryDispatch, GridFirmPower, SupplyStack
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)

VM_TYPES = (
    VMType("D2", 2, 8.0),
    VMType("D4", 4, 16.0),
    VMType("D8", 8, 32.0),
    VMType("D16", 16, 64.0),
)

SUPPLY_FIELDS = (
    "delivered",
    "soc_mwh",
    "charge_mwh",
    "discharge_mwh",
    "grid_import_mwh",
    "curtailed_mwh",
)


def make_trace(values):
    grid = TimeGrid(START, timedelta(minutes=15), len(values))
    return PowerTrace(grid, np.asarray(values, dtype=float), "t", "wind")


def random_scenario(seed, n=2000, n_requests=2000, **config_overrides):
    """Noisy diurnal power with dead spans plus random arrivals."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = np.clip(
        0.5 + 0.45 * np.sin(2 * np.pi * t / 96) + rng.normal(0, 0.08, n),
        0.0,
        1.0,
    )
    values[(t % 500) < 30] = 0.0
    trace = make_trace(values)
    defaults = dict(
        cluster=ClusterSpec(n_servers=40, server=ServerSpec()),
        queue_patience_steps=12,
    )
    defaults.update(config_overrides)
    config = DatacenterConfig(**defaults)
    requests = []
    for vm_id in range(n_requests):
        arrival = int(rng.integers(0, n))
        lifetime = int(rng.integers(1, 300))
        vm_type = VM_TYPES[rng.integers(0, len(VM_TYPES))]
        vm_class = (
            VMClass.STABLE if rng.random() < 0.6 else VMClass.DEGRADABLE
        )
        requests.append(
            VMRequest(vm_id, arrival, lifetime, vm_type, vm_class)
        )
    return config, trace, requests


def assert_identical(got, want) -> None:
    for column in StepColumns.__slots__[1:]:
        np.testing.assert_array_equal(
            getattr(got.columns, column),
            getattr(want.columns, column),
            err_msg=f"column {column} differs",
        )
    assert list(got.events) == list(want.events)
    assert (got.supply is None) == (want.supply is None)
    if got.supply is not None:
        for field in SUPPLY_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(got.supply, field)),
                np.asarray(getattr(want.supply, field)),
                err_msg=f"supply {field} differs",
            )
    assert got.summary_dict() == want.summary_dict()


def run_engines(config, trace, requests, engines=("soa", "event"), **dc_kw):
    return [
        Datacenter(config, trace, **dc_kw).run(requests, engine=engine)
        for engine in engines
    ]


class TestOpenLoopGolden:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_scenarios_match_event_and_dense(self, seed):
        soa, event, dense = run_engines(
            *random_scenario(seed), engines=("soa", "event", "dense")
        )
        assert_identical(soa, event)
        assert_identical(soa, dense)

    @pytest.mark.parametrize(
        "allocation", ["bestfit", "firstfit", "worstfit"]
    )
    def test_allocation_policies(self, allocation):
        soa, event = run_engines(*random_scenario(4, allocation=allocation))
        assert_identical(soa, event)

    @pytest.mark.parametrize(
        "order",
        [
            EvictionOrder.FIRST_PLACED,
            EvictionOrder.LARGEST_CORES,
            EvictionOrder.SMALLEST_MEMORY,
        ],
    )
    @pytest.mark.parametrize("pause", [False, True])
    def test_eviction_orders(self, order, pause):
        soa, event = run_engines(
            *random_scenario(
                5, eviction_order=order, pause_degradable=pause
            )
        )
        assert_identical(soa, event)

    def test_server_granular_power_model(self):
        soa, event = run_engines(*random_scenario(6, power_model="server"))
        assert_identical(soa, event)

    def test_static_utilization_cap(self):
        soa, event = run_engines(
            *random_scenario(7, power_relative_admission=False)
        )
        assert_identical(soa, event)


def battery_stack() -> SupplyStack:
    return SupplyStack(
        components=(BatteryDispatch(capacity_mwh=4.0, max_power_mw=2.0),)
    )


def grid_stack() -> SupplyStack:
    return SupplyStack(
        components=(GridFirmPower(budget_mwh=400.0, max_power_mw=1.5),)
    )


def battery_grid_stack() -> SupplyStack:
    return SupplyStack(
        components=(
            BatteryDispatch(
                capacity_mwh=2.5, max_power_mw=1.5, efficiency=0.9
            ),
            GridFirmPower(budget_mwh=300.0, max_power_mw=1.0),
        )
    )


class TestClosedLoopGolden:
    @pytest.mark.parametrize(
        "stack_factory", [battery_stack, grid_stack, battery_grid_stack]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stacks_match_event(self, stack_factory, seed):
        config, trace, requests = random_scenario(seed)
        soa, event = run_engines(
            config, trace, requests,
            supply=stack_factory(), supply_mode="closed",
        )
        assert_identical(soa, event)

    def test_battery_matches_dense(self):
        config, trace, requests = random_scenario(2)
        soa, dense = run_engines(
            config, trace, requests, engines=("soa", "dense"),
            supply=battery_stack(), supply_mode="closed",
        )
        assert_identical(soa, dense)

    def test_server_power_model(self):
        config, trace, requests = random_scenario(3, power_model="server")
        soa, event = run_engines(
            config, trace, requests,
            supply=battery_grid_stack(), supply_mode="closed",
        )
        assert_identical(soa, event)


def reference_min_budget(need: int, util: float, total: int) -> int:
    """The historical inversion: scan budgets upward from zero."""
    b = 0
    while int(util * min(b, total)) < need:
        b += 1
    return b


class TestMinBudgetForCap:
    @pytest.mark.parametrize(
        "util",
        [0.1, 0.25, 1 / 3, 0.5, 0.7, 0.7000000000000001, 0.9, 0.99, 1.0],
    )
    @pytest.mark.parametrize("total", [10, 160])
    def test_matches_reference_scan_exhaustively(self, util, total):
        cap = int(util * total)
        for need in range(cap + 1):
            assert min_budget_for_cap(need, util, total) == (
                reference_min_budget(need, util, total)
            ), (need, util, total)

    def test_large_cluster_sampled(self):
        rng = np.random.default_rng(11)
        total = 5120
        for util in (0.3, 0.7, 0.85):
            cap = int(util * total)
            needs = set(rng.integers(0, cap + 1, size=60).tolist())
            needs.update((0, 1, cap - 1, cap))
            for need in needs:
                assert min_budget_for_cap(need, util, total) == (
                    reference_min_budget(need, util, total)
                ), (need, util, total)

    def test_nonpositive_need_is_free(self):
        assert min_budget_for_cap(0, 0.7, 100) == 0
        assert min_budget_for_cap(-5, 0.7, 100) == 0


class TestPhaseTimers:
    def test_disabled_without_observability(self):
        config, trace, requests = random_scenario(0, n=300, n_requests=200)
        dc = Datacenter(config, trace)
        dc.run(requests, engine="event")
        # No sink active: the timer-free fast path stays armed off.
        assert dc._phase_seconds is None

    @pytest.mark.parametrize("engine", ["dense", "event", "soa"])
    def test_counters_emitted_per_phase(self, engine):
        config, trace, requests = random_scenario(1, n=400, n_requests=400)
        with obs.use(obs.MemorySink()) as mem:
            Datacenter(config, trace).run(requests, engine=engine)
        counters = {
            r["name"]: r["value"]
            for r in mem.metrics()
            if r["name"].startswith("sim.phase.")
        }
        expected = {
            f"sim.phase.{phase}_us" for phase in Datacenter.PHASE_NAMES
        }
        assert set(counters) == expected
        assert all(v >= 0 for v in counters.values())
        # Work happened, so the phases cannot all be zero-cost.
        assert sum(counters.values()) > 0

    def test_counters_render_in_report(self):
        config, trace, requests = random_scenario(2, n=300, n_requests=300)
        with obs.use(obs.MemorySink()) as mem:
            Datacenter(config, trace).run(requests, engine="soa")
        text = obs.render_report(mem.records)
        assert "sim.phase.launches_us" in text

    def test_timed_run_stays_golden(self):
        # Timers must observe, not perturb: a run under observability
        # equals the silent run bit for bit.
        config, trace, requests = random_scenario(3, n=500, n_requests=500)
        silent = Datacenter(config, trace).run(requests, engine="soa")
        with obs.use(obs.MemorySink()):
            timed = Datacenter(config, trace).run(requests, engine="soa")
        assert_identical(timed, silent)
