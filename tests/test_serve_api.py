"""Endpoint tests for the digital-twin HTTP API (repro.serve.app).

The app is pure ASGI, so the suite drives the coroutine directly with
the in-repo :class:`repro.serve.testing.ASGIClient` — no HTTP stack,
no optional dependencies.  When the ``serve`` extra is installed
(httpx), the same app is additionally exercised through
``httpx.ASGITransport`` to prove real-transport compatibility.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.experiments import Scenario
from repro.experiments.runner import fleet_sites_for_scenario
from repro.experiments.scenario import WorkloadSpec
from repro.serve import create_app
from repro.serve.testing import ASGIClient
from repro.sim import simulate
from repro.supply.spec import SupplySpec
from repro.units import grid_days


def tiny_scenario(name="twin", days=1.0, seed=3, closed=True) -> Scenario:
    return Scenario(
        name=name,
        sites=("BE-wind", "ES-solar"),
        grid=grid_days(datetime(2020, 5, 3), days),
        workload=WorkloadSpec(kind="vm_requests", utilization=0.7),
        supply=(
            SupplySpec(
                battery_mwh=2.0,
                battery_power_mw=1.0,
                grid_budget_mwh=50.0,
                mode="closed",
            )
            if closed
            else SupplySpec()
        ),
        seed=seed,
    )


@pytest.fixture()
def client():
    return ASGIClient(create_app())


def create_session(client, scenario=None, **payload):
    scenario = scenario or tiny_scenario()
    body = {"scenario": scenario.to_dict(), **payload}
    response = client.post("/sessions", json=body)
    assert response.status == 201, response.body
    return response.json()


class TestEndpoints:
    def test_healthz(self, client):
        response = client.get("/healthz")
        assert response.status == 200
        assert response.json() == {"ok": True, "sessions": 0}

    def test_create_from_partial_scenario_spec(self, client):
        # Hand-written API specs (the README walkthrough) omit the
        # optional scenario sections; the registry fills the defaults.
        body = {
            "engine": "event",
            "scenario": {
                "name": "twin",
                "sites": ["BE-wind"],
                "grid": {
                    "start": "2020-05-03T00:00:00",
                    "step_seconds": 900.0,
                    "n": 96,
                },
                "workload": {"kind": "vm_requests", "utilization": 0.7},
                "supply": {"battery_mwh": 2.0, "mode": "closed"},
            },
        }
        response = client.post("/sessions", json=body)
        assert response.status == 201, response.body
        sid = response.json()["session_id"]
        status = client.post(f"/sessions/{sid}/tick?n=96").json()
        assert status["done"]
        # Name and sites stay required.
        del body["scenario"]["sites"]
        assert client.post("/sessions", json=body).status == 400

    def test_create_tick_status_results(self, client):
        status = create_session(client, engine="event")
        sid = status["session_id"]
        assert status["step"] == 0
        assert sorted(status["sites"]) == ["BE-wind", "ES-solar"]

        ticked = client.post(f"/sessions/{sid}/tick?n=40").json()
        assert ticked["step"] == 40
        assert not ticked["done"]
        assert (
            client.get(f"/sessions/{sid}/status").json()["step"] == 40
        )

        premature = client.get(f"/sessions/{sid}/results")
        assert premature.status == 400

        done = client.post(f"/sessions/{sid}/tick?n=100000").json()
        assert done["done"]
        results = client.get(f"/sessions/{sid}/results")
        assert results.status == 200
        summaries = results.json()["results"]
        assert sorted(summaries) == ["BE-wind", "ES-solar"]

        # The session's final summaries match the batch fleet engine
        # run of the same scenario exactly.
        want = simulate(
            fleet_sites_for_scenario(tiny_scenario()),
            record_events=True,
        )
        for name, summary in summaries.items():
            assert summary == want[name].summary_dict()

    def test_inject_and_audit(self, client):
        sid = create_session(client)["session_id"]
        client.post(f"/sessions/{sid}/tick?n=10")
        queued = client.post(
            f"/sessions/{sid}/inject",
            json={"kind": "blackout", "site": "BE-wind",
                  "duration_steps": 5},
        )
        assert queued.status == 202
        assert queued.json()["queued"]["event"] == "inject"
        client.post(f"/sessions/{sid}/tick?n=5")
        audit = client.get(f"/sessions/{sid}/audit").json()["audit"]
        events = [entry["event"] for entry in audit]
        assert events[0] == "create"
        assert "inject" in events and "apply" in events
        tail = client.get(f"/sessions/{sid}/audit?last_n=2").json()
        assert len(tail["audit"]) == 2

        bad = client.post(
            f"/sessions/{sid}/inject", json={"kind": "earthquake"}
        )
        assert bad.status == 400
        assert "earthquake" in bad.json()["error"]

    def test_checkpoint_restore_fork_roundtrip(self, client):
        sid = create_session(client)["session_id"]
        client.post(f"/sessions/{sid}/tick?n=30")

        forked = client.post(f"/sessions/{sid}/fork")
        assert forked.status == 201
        fork_id = forked.json()["session_id"]
        assert fork_id != sid

        blob = client.get(f"/sessions/{sid}/checkpoint")
        assert blob.status == 200
        assert blob.headers["content-type"] == "application/octet-stream"

        restored = client.post(
            "/sessions/restore?session_id=replay", data=blob.body
        )
        assert restored.status == 201
        assert restored.json()["session_id"] == "replay"
        assert restored.json()["step"] == 30

        # All three finish to identical summaries.
        summaries = []
        for session_id in (sid, fork_id, "replay"):
            client.post(f"/sessions/{session_id}/tick?n=100000")
            summaries.append(
                client.get(f"/sessions/{session_id}/results").json()[
                    "results"
                ]
            )
        assert summaries[0] == summaries[1] == summaries[2]

    def test_list_delete_and_errors(self, client):
        sid = create_session(client)["session_id"]
        listing = client.get("/sessions").json()["sessions"]
        assert [entry["session_id"] for entry in listing] == [sid]

        assert client.delete(f"/sessions/{sid}").status == 200
        assert client.get("/sessions").json()["sessions"] == []

        assert client.get(f"/sessions/{sid}/status").status == 404
        assert client.delete(f"/sessions/{sid}").status == 404
        assert client.get("/nowhere").status == 404
        assert client.post("/sessions", json={}).status == 400
        assert (
            client.post("/sessions", json={"scenario": "x"}).status == 400
        )
        assert client.post("/sessions", data=b"{broken").status == 400
        assert client.request("PUT", "/sessions").status == 405
        assert client.post("/sessions/restore", data=b"junk").status == 400

    def test_engine_soa_session(self, client):
        status = create_session(client, engine="soa")
        sid = status["session_id"]
        done = client.post(f"/sessions/{sid}/tick?n=100000").json()
        assert done["done"]
        assert client.get(f"/sessions/{sid}/results").status == 200


class TestConcurrentSessions:
    def test_eight_sessions_round_robin(self, client):
        """≥8 live sessions advance independently and each finishes
        bit-identical to its own batch reference."""
        scenarios = [
            tiny_scenario(name=f"twin-{i}", seed=i, closed=i % 2 == 0)
            for i in range(8)
        ]
        ids = []
        for i, scenario in enumerate(scenarios):
            status = create_session(
                client, scenario=scenario,
                engine="event" if i % 2 == 0 else "soa",
            )
            ids.append(status["session_id"])
        assert len(set(ids)) == 8
        assert client.get("/healthz").json()["sessions"] == 8

        # Interleave ticks of different sizes across all sessions.
        steps = {sid: 0 for sid in ids}
        for round_no in range(4):
            for i, sid in enumerate(ids):
                n = 13 + 7 * ((i + round_no) % 3)
                payload = client.post(f"/sessions/{sid}/tick?n={n}").json()
                steps[sid] += n
                assert payload["step"] == min(
                    steps[sid], payload["n_steps"]
                )
        for sid in ids:
            client.post(f"/sessions/{sid}/tick?n=100000")

        for sid, scenario in zip(ids, scenarios):
            summaries = client.get(f"/sessions/{sid}/results").json()[
                "results"
            ]
            want = simulate(
                fleet_sites_for_scenario(scenario), record_events=True
            )
            for name, summary in summaries.items():
                assert summary == want[name].summary_dict(), (
                    sid, name,
                )


class TestHttpxTransport:
    def test_via_httpx_asgi_transport(self):
        """Real-transport compatibility, run when the serve extra is
        installed (the dedicated CI leg); skipped otherwise."""
        httpx = pytest.importorskip("httpx")
        import asyncio

        async def drive():
            transport = httpx.ASGITransport(app=create_app())
            async with httpx.AsyncClient(
                transport=transport, base_url="http://twin"
            ) as http:
                health = await http.get("/healthz")
                assert health.json()["ok"] is True
                created = await http.post(
                    "/sessions",
                    json={"scenario": tiny_scenario().to_dict()},
                )
                assert created.status_code == 201
                sid = created.json()["session_id"]
                ticked = await http.post(f"/sessions/{sid}/tick?n=25")
                assert ticked.json()["step"] == 25
                blob = await http.get(f"/sessions/{sid}/checkpoint")
                restored = await http.post(
                    "/sessions/restore", content=blob.content
                )
                assert restored.status_code == 201
                assert restored.json()["step"] == 25

        asyncio.run(drive())
