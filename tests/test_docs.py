"""Documentation accuracy: the README's code blocks must run.

Broken quickstart snippets are the fastest way to lose a prospective
user; this test executes every Python fence in README.md.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"
DESIGN = Path(__file__).parent.parent / "DESIGN.md"
EXPERIMENTS = Path(__file__).parent.parent / "EXPERIMENTS.md"


def python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_required_sections():
    text = README.read_text()
    for section in ("Install", "Quickstart", "Architecture",
                    "Reproducing the paper"):
        assert section in text


def test_readme_python_blocks_execute():
    blocks = python_blocks(README)
    assert blocks, "README should contain runnable python examples"
    for block in blocks:
        exec(compile(block, "<README>", "exec"), {})


def test_design_lists_every_experiment():
    text = DESIGN.read_text()
    for artifact in ("Fig 2a", "Fig 2b", "Fig 3a", "Fig 3b", "Fig 4a",
                     "Fig 4b", "Fig 5", "Table 1", "Fig 7"):
        assert artifact in text, f"DESIGN.md missing {artifact}"


def test_experiments_covers_every_figure():
    text = EXPERIMENTS.read_text()
    for heading in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                    "Table 1", "Figure 7"):
        assert heading in text, f"EXPERIMENTS.md missing {heading}"


def test_design_module_map_matches_tree():
    """Every subpackage named in DESIGN.md's module map exists."""
    import repro

    root = Path(repro.__file__).parent
    for package in ("traces", "forecast", "workload", "cluster",
                    "multisite", "sched", "sim", "analysis",
                    "availability", "batch", "wan"):
        assert (root / package / "__init__.py").exists(), package


def test_examples_referenced_in_readme_exist():
    text = README.read_text()
    examples_dir = Path(__file__).parent.parent / "examples"
    for match in re.findall(r"examples/(\w+\.py)", text):
        assert (examples_dir / match).exists(), match
