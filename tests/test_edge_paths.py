"""Targeted edge-path tests across modules.

Each test pins down a subtle behaviour that a refactor could silently
break: slot arithmetic in climatology, home-site-dark arrivals in the
detailed executor, pause-mode interactions with the admission queue,
and forecast determinism across differently-named traces.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    EventKind,
    ServerSpec,
)
from repro.forecast import ClimatologyForecaster, NoisyOracleForecaster
from repro.sched import Placement, SchedulingProblem, SiteCapacity
from repro.sim import execute_placement_detailed
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import Application, VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)


def sinusoidal_diurnal_trace(days=10, step_minutes=15):
    """A perfectly periodic diurnal trace (deterministic)."""
    per_day = int(24 * 60 / step_minutes)
    n = days * per_day
    hours = (np.arange(n) % per_day) * (step_minutes / 60.0)
    values = 0.5 + 0.5 * np.sin(2 * np.pi * hours / 24.0)
    grid = TimeGrid(START, timedelta(minutes=step_minutes), n)
    return PowerTrace(grid, np.clip(values, 0, 1), "diurnal", "solar")


class TestClimatologySlotArithmetic:
    def test_learns_periodic_pattern_exactly(self):
        trace = sinusoidal_diurnal_trace()
        model = ClimatologyForecaster()
        issue = 5 * 96
        forecast = model.forecast(trace, issue, 96)
        # A perfectly periodic trace is predicted exactly.
        np.testing.assert_allclose(
            forecast.values, trace.values[issue : issue + 96], atol=1e-9
        )

    def test_mid_day_issue_keeps_slots_aligned(self):
        trace = sinusoidal_diurnal_trace()
        model = ClimatologyForecaster()
        issue = 5 * 96 + 37  # not a day boundary
        forecast = model.forecast(trace, issue, 50)
        np.testing.assert_allclose(
            forecast.values, trace.values[issue : issue + 50], atol=1e-9
        )

    def test_history_days_window_alignment(self):
        trace = sinusoidal_diurnal_trace()
        model = ClimatologyForecaster(history_days=2)
        issue = 6 * 96 + 13
        forecast = model.forecast(trace, issue, 96)
        np.testing.assert_allclose(
            forecast.values, trace.values[issue : issue + 96], atol=1e-9
        )


class TestNoisyOracleIdentity:
    def test_same_values_different_name_different_noise(self):
        # The per-site seed derivation must key on the trace name so
        # co-located sites with identical output do not share errors.
        grid = TimeGrid(START, timedelta(minutes=15), 192)
        values = np.full(192, 0.5)
        a = PowerTrace(grid, values, "a", "wind")
        b = PowerTrace(grid, values, "b", "wind")
        model = NoisyOracleForecaster(seed=1)
        fa = model.forecast(a, 0, 96)
        fb = model.forecast(b, 0, 96)
        assert not np.array_equal(fa.values, fb.values)

    def test_base_seed_changes_errors(self):
        trace = sinusoidal_diurnal_trace()
        f1 = NoisyOracleForecaster(seed=1).forecast(trace, 0, 96)
        f2 = NoisyOracleForecaster(seed=2).forecast(trace, 0, 96)
        assert not np.array_equal(f1.values, f2.values)


class TestDetailedExecutorEdges:
    def test_arrival_at_dark_home_lands_at_sister(self):
        n = 6
        grid = TimeGrid(START, timedelta(hours=1), n)
        problem = SchedulingProblem(
            grid,
            (
                SiteCapacity("dark", 400, np.zeros(n)),
                SiteCapacity("lit", 400, np.full(n, 400.0)),
            ),
            (Application(0, 0, n, 5, VMType("T2", 2, 8.0), 1.0),),
            bytes_per_core=1.0,
        )
        placement = Placement({0: {"dark": 5, "lit": 0}})
        traces = {
            "dark": PowerTrace(grid, np.zeros(n), "dark", "wind"),
            "lit": PowerTrace(grid, np.ones(n), "lit", "wind"),
        }
        cluster = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))
        result = execute_placement_detailed(
            problem, placement, traces, cluster
        )
        # VMs never started at dark, so landing at lit is a fresh
        # start (no migration bytes), but they must run somewhere.
        lit_records = result.records["lit"]
        assert lit_records[0].running_cores == 10
        assert result.homeless_vm_steps == 0
        assert result.total_transfer_gb() == 0.0


class TestPauseModeQueueInteraction:
    def test_paused_cores_block_new_admissions_under_cap(self):
        """Paused VMs keep their allocation, so the admission cap must
        count them — a power dip must not open capacity for newcomers
        that would strand the paused VMs."""
        grid = TimeGrid(START, timedelta(minutes=15), 8)
        # Power: full, dip, recover.
        values = np.array([1.0, 0.25, 0.25, 1.0, 1.0, 1.0, 1.0, 1.0])
        trace = PowerTrace(grid, values, "t", "wind")
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=1, server=ServerSpec(cores=8)),
            admission_utilization=1.0,
            pause_degradable=True,
            queue_patience_steps=10,
        )
        vm_type = VMType("T4", 4, 16.0)
        first = [
            VMRequest(0, 0, 8, vm_type, VMClass.DEGRADABLE),
            VMRequest(1, 0, 8, vm_type, VMClass.DEGRADABLE),
        ]
        newcomer = [VMRequest(2, 1, 4, vm_type, VMClass.STABLE)]
        result = Datacenter(config, trace).run(first + newcomer)
        # During the dip one degradable VM pauses; the newcomer must
        # wait (allocated = 8 incl. paused) rather than steal the slot.
        events_vm2 = result.events.for_vm(2)
        assert events_vm2[0].kind is EventKind.QUEUE
        # Paused VM resumes once power returns.
        assert result.events.count(EventKind.RESUME) >= 1


class TestSchedulingProblemEdges:
    def test_single_site_problem_trivially_places(self):
        from repro.sched import GreedyScheduler, MIPScheduler

        n = 6
        grid = TimeGrid(START, timedelta(hours=1), n)
        problem = SchedulingProblem(
            grid,
            (SiteCapacity("only", 1000, np.full(n, 800.0)),),
            (Application(0, 0, n, 10, VMType("T2", 2, 8.0), 0.5),),
            bytes_per_core=1.0,
        )
        for scheduler in (GreedyScheduler(), MIPScheduler()):
            placement = scheduler.schedule(problem)
            assert placement.assignment[0] == {"only": 10}

    def test_app_with_one_step_duration(self):
        from repro.sched import MIPScheduler

        n = 4
        grid = TimeGrid(START, timedelta(hours=1), n)
        problem = SchedulingProblem(
            grid,
            (
                SiteCapacity("a", 1000, np.full(n, 800.0)),
                SiteCapacity("b", 1000, np.full(n, 700.0)),
            ),
            (Application(0, 2, 1, 4, VMType("T2", 2, 8.0), 1.0),),
            bytes_per_core=1.0,
        )
        placement = MIPScheduler().schedule(problem)
        placement.validate_complete(problem)
