"""Tests for repro.traces.base: the PowerTrace container."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TimeGridError, TraceError
from repro.traces import PowerTrace
from repro.traces.base import aggregate_traces
from repro.units import TimeGrid, grid_days

START = datetime(2020, 5, 1)


def make_trace(values, step_minutes=15, capacity=400.0, name="t", kind="solar"):
    values = np.asarray(values, dtype=float)
    grid = TimeGrid(START, timedelta(minutes=step_minutes), len(values))
    return PowerTrace(grid, values, name, kind, capacity)


class TestConstruction:
    def test_valid(self):
        trace = make_trace([0.0, 0.5, 1.0])
        assert len(trace) == 3
        assert trace.capacity_mw == 400.0

    def test_length_mismatch_rejected(self):
        grid = TimeGrid(START, timedelta(minutes=15), 4)
        with pytest.raises(TraceError):
            PowerTrace(grid, np.zeros(3))

    def test_negative_values_rejected(self):
        with pytest.raises(TraceError):
            make_trace([0.1, -0.2])

    def test_nan_rejected(self):
        with pytest.raises(TraceError):
            make_trace([0.1, float("nan")])

    def test_2d_rejected(self):
        grid = TimeGrid(START, timedelta(minutes=15), 4)
        with pytest.raises(TraceError):
            PowerTrace(grid, np.zeros((2, 2)))

    def test_bad_capacity_rejected(self):
        with pytest.raises(TraceError):
            make_trace([0.1], capacity=0.0)


class TestConversions:
    def test_power_mw(self):
        trace = make_trace([0.0, 0.5, 1.0], capacity=200.0)
        assert list(trace.power_mw()) == [0.0, 100.0, 200.0]

    def test_energy_mwh(self):
        # Constant 1.0 for 4 x 15min = 1 hour at 400 MW -> 400 MWh.
        trace = make_trace([1.0] * 4)
        assert trace.energy_mwh() == pytest.approx(400.0)

    def test_scaled(self):
        trace = make_trace([0.5]).scaled(800.0)
        assert trace.capacity_mw == 800.0
        assert trace.power_mw()[0] == pytest.approx(400.0)

    def test_renamed(self):
        assert make_trace([0.5]).renamed("x").name == "x"


class TestSlicing:
    def test_slice(self):
        trace = make_trace(np.linspace(0, 1, 10))
        sub = trace.slice(2, 5)
        assert len(sub) == 5
        assert sub.grid.start == trace.grid.time_at(2)
        np.testing.assert_allclose(sub.values, trace.values[2:7])

    def test_slice_days(self):
        grid = grid_days(START, 3)
        trace = PowerTrace(grid, np.ones(grid.n))
        day2 = trace.slice_days(1, 1)
        assert len(day2) == 96
        assert day2.grid.start == START + timedelta(days=1)

    def test_downsample_averages(self):
        trace = make_trace([0.0, 1.0, 0.5, 0.5], step_minutes=15)
        hourly = trace.resample(timedelta(hours=1))
        assert len(hourly) == 1
        assert hourly.values[0] == pytest.approx(0.5)

    def test_upsample_holds(self):
        trace = make_trace([0.25, 0.75], step_minutes=60)
        fine = trace.resample(timedelta(minutes=15))
        assert len(fine) == 8
        np.testing.assert_allclose(fine.values[:4], 0.25)
        np.testing.assert_allclose(fine.values[4:], 0.75)

    def test_resample_identity(self):
        trace = make_trace([0.1, 0.2])
        assert trace.resample(timedelta(minutes=15)) is trace

    def test_resample_energy_preserved_on_downsample(self):
        rng = np.random.default_rng(7)
        trace = make_trace(rng.uniform(size=96))
        hourly = trace.resample(timedelta(hours=1))
        assert hourly.energy_mwh() == pytest.approx(trace.energy_mwh())

    def test_bad_downsample_rejected(self):
        trace = make_trace([0.1] * 5)
        with pytest.raises(TraceError):
            trace.resample(timedelta(minutes=40))


class TestStatistics:
    def test_cov_constant_is_zero(self):
        assert make_trace([0.5] * 10).cov() == pytest.approx(0.0)

    def test_cov_all_zero_is_inf(self):
        assert make_trace([0.0] * 10).cov() == float("inf")

    def test_zero_fraction(self):
        trace = make_trace([0.0, 0.0, 0.5, 1.0])
        assert trace.zero_fraction() == pytest.approx(0.5)

    def test_tail_ratio(self):
        values = np.concatenate([np.full(99, 0.1), [0.4]])
        trace = make_trace(values)
        assert trace.tail_ratio(99, 75) == pytest.approx(
            np.percentile(values, 99) / 0.1
        )

    def test_tail_ratio_zero_lower_is_inf(self):
        trace = make_trace([0.0] * 90 + [1.0] * 10)
        assert trace.tail_ratio(99, 50) == float("inf")

    def test_stable_energy_definition(self):
        # Min power 0.25 * 400 MW = 100 MW over 1 hour -> 100 MWh stable.
        trace = make_trace([0.25, 0.5, 1.0, 0.75])
        assert trace.stable_power_mw() == pytest.approx(100.0)
        assert trace.stable_energy_mwh() == pytest.approx(100.0)
        assert trace.variable_energy_mwh() == pytest.approx(
            trace.energy_mwh() - 100.0
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_stable_plus_variable_equals_total(self, values):
        trace = make_trace(values)
        assert trace.stable_energy_mwh() + trace.variable_energy_mwh() == (
            pytest.approx(trace.energy_mwh(), abs=1e-9)
        )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_stable_energy_nonnegative(self, values):
        trace = make_trace(values)
        assert trace.stable_energy_mwh() >= 0.0
        assert trace.variable_energy_mwh() >= -1e-12


class TestAggregation:
    def test_aggregate_empty_rejected(self):
        with pytest.raises(TraceError):
            aggregate_traces([])

    def test_aggregate_preserves_energy(self):
        a = make_trace([0.2, 0.4], capacity=400.0)
        b = make_trace([0.6, 0.8], capacity=200.0)
        combined = aggregate_traces([a, b])
        assert combined.capacity_mw == 600.0
        assert combined.energy_mwh() == pytest.approx(
            a.energy_mwh() + b.energy_mwh()
        )

    def test_aggregate_values_normalized(self):
        a = make_trace([1.0], capacity=400.0)
        b = make_trace([1.0], capacity=400.0)
        combined = aggregate_traces([a, b])
        assert combined.values[0] == pytest.approx(1.0)

    def test_aggregate_kind_mixing(self):
        a = make_trace([0.1], kind="solar")
        b = make_trace([0.1], kind="wind")
        assert aggregate_traces([a, b]).kind == "mixed"
        assert aggregate_traces([a, a]).kind == "solar"

    def test_aggregate_grid_mismatch_rejected(self):
        a = make_trace([0.1, 0.2])
        b = make_trace([0.1])
        with pytest.raises(TimeGridError):
            aggregate_traces([a, b])

    def test_aggregation_reduces_cov_for_complementary(self):
        # Perfectly anti-correlated sites -> constant aggregate, cov 0.
        a = make_trace([0.0, 1.0, 0.0, 1.0])
        b = make_trace([1.0, 0.0, 1.0, 0.0])
        combined = aggregate_traces([a, b])
        assert combined.cov() == pytest.approx(0.0)
        assert combined.cov() < min(a.cov(), b.cov())
