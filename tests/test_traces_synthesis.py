"""Tests for the solar/wind synthesizers and weather regime machinery."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.traces import (
    RegimeModel,
    SolarConfig,
    WeatherRegime,
    WindConfig,
    clear_sky_profile,
    default_european_catalog,
    sample_regime_sequence,
    synthesize_catalog_traces,
    synthesize_solar,
    synthesize_wind,
    turbine_power_curve,
)
from repro.traces.weather import (
    _intraday_ar1_loop,
    correlated_daily_latents,
    default_solar_regimes,
    default_wind_regimes,
    distance_correlation_matrix,
    intraday_ar1,
    regime_modulation,
    regime_sequence_from_latent,
    stationary_distribution,
)
from repro.traces.wind import _ou_speed_path_loop, ou_speed_path
from repro.units import grid_days


class TestWeatherRegimes:
    def test_regime_validation(self):
        with pytest.raises(ConfigurationError):
            WeatherRegime("bad", level=-0.1, volatility=0.1, persistence=0.5)
        with pytest.raises(ConfigurationError):
            WeatherRegime("bad", level=0.5, volatility=-0.1, persistence=0.5)
        with pytest.raises(ConfigurationError):
            WeatherRegime("bad", level=0.5, volatility=0.1, persistence=1.0)

    def test_model_validation(self):
        regime = WeatherRegime("a", 0.5, 0.1, 0.5)
        with pytest.raises(ConfigurationError):
            RegimeModel((regime,), np.array([[0.5]]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            RegimeModel((regime,), np.array([[1.0]]), np.array([0.5]))

    def test_model_by_name(self):
        model = default_solar_regimes()
        assert model.by_name("sunny").level == pytest.approx(1.0)
        with pytest.raises(KeyError):
            model.by_name("hurricane")

    def test_sample_sequence_shape_and_range(self, rng):
        model = default_solar_regimes()
        seq = sample_regime_sequence(model, 100, rng)
        assert len(seq) == 100
        assert seq.min() >= 0
        assert seq.max() < len(model.regimes)

    def test_sample_sequence_zero_days(self, rng):
        assert len(sample_regime_sequence(default_solar_regimes(), 0, rng)) == 0

    def test_sample_sequence_negative_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            sample_regime_sequence(default_solar_regimes(), -1, rng)

    def test_stationary_distribution_sums_to_one(self):
        for model in (default_solar_regimes(), default_wind_regimes()):
            pi = stationary_distribution(model)
            assert pi.sum() == pytest.approx(1.0)
            assert np.all(pi >= 0)
            # Fixed point of the chain.
            np.testing.assert_allclose(pi @ model.transition, pi, atol=1e-9)

    def test_latent_regime_mapping_matches_stationary(self, rng):
        model = default_solar_regimes()
        latent = rng.standard_normal(20000)
        seq = regime_sequence_from_latent(model, latent)
        pi = stationary_distribution(model)
        freq = np.bincount(seq, minlength=3) / len(seq)
        np.testing.assert_allclose(freq, pi, atol=0.02)

    def test_intraday_ar1_stationary_std(self, rng):
        path = intraday_ar1(50000, volatility=0.2, persistence=0.7, rng=rng)
        assert np.std(path) == pytest.approx(0.2, rel=0.05)
        assert abs(np.mean(path)) < 0.01

    def test_intraday_ar1_empty(self, rng):
        assert len(intraday_ar1(0, 0.1, 0.5, rng)) == 0

    def test_regime_modulation_bounds(self, rng):
        model = default_solar_regimes()
        days = sample_regime_sequence(model, 10, rng)
        mod = regime_modulation(model.regimes, days, 96, rng)
        assert len(mod) == 960
        assert mod.min() >= 0.0
        assert mod.max() <= 1.25


class TestSpatialCorrelation:
    def test_distance_correlation_properties(self):
        distances = np.array([[0.0, 100.0], [100.0, 1e5]])
        # Matrix must be square + symmetric in use; use a real one.
        distances = np.array([[0.0, 100.0], [100.0, 0.0]])
        corr = distance_correlation_matrix(distances, 600.0)
        assert corr[0, 0] == 1.0
        assert 0 < corr[0, 1] < 1
        assert corr[0, 1] == pytest.approx(np.exp(-100 / 600))

    def test_distance_correlation_rejects_nonsquare(self):
        with pytest.raises(ConfigurationError):
            distance_correlation_matrix(np.zeros((2, 3)))

    def test_distance_correlation_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            distance_correlation_matrix(np.zeros((2, 2)), 0.0)

    def test_correlated_latents_shape_and_marginals(self, rng):
        corr = distance_correlation_matrix(
            np.array([[0.0, 50.0], [50.0, 0.0]])
        )
        latents = correlated_daily_latents(corr, 5000, rng)
        assert latents.shape == (5000, 2)
        # Marginals approximately standard normal.
        assert np.std(latents[:, 0]) == pytest.approx(1.0, rel=0.1)
        # Nearby sites strongly correlated.
        sample_corr = np.corrcoef(latents[:, 0], latents[:, 1])[0, 1]
        assert sample_corr > 0.7

    def test_correlated_latents_distance_decay(self, rng):
        distances = np.array(
            [[0.0, 50.0, 3000.0], [50.0, 0.0, 3000.0], [3000.0, 3000.0, 0.0]]
        )
        corr = distance_correlation_matrix(distances)
        latents = correlated_daily_latents(corr, 5000, rng)
        near = np.corrcoef(latents[:, 0], latents[:, 1])[0, 1]
        far = np.corrcoef(latents[:, 0], latents[:, 2])[0, 1]
        assert near > far + 0.3

    def test_correlated_latents_bad_persistence(self, rng):
        corr = np.eye(2)
        with pytest.raises(ConfigurationError):
            correlated_daily_latents(corr, 10, rng, day_persistence=1.0)


class TestSolarSynthesis:
    def test_diurnal_zero_at_night(self, week_grid, rng):
        trace = synthesize_solar(week_grid, rng=rng)
        hours = week_grid.hour_of_day()
        night = trace.values[(hours < 3) | (hours > 22)]
        assert np.all(night == 0.0)

    def test_values_in_unit_range(self, month_grid, rng):
        trace = synthesize_solar(month_grid, rng=rng)
        assert trace.values.min() >= 0.0
        assert trace.values.max() <= 1.0

    def test_seeded_determinism(self, week_grid):
        a = synthesize_solar(week_grid, seed=42)
        b = synthesize_solar(week_grid, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self, week_grid):
        a = synthesize_solar(week_grid, seed=1)
        b = synthesize_solar(week_grid, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_seasonality_winter_below_summer(self):
        year = grid_days(datetime(2020, 1, 1), 365)
        config = SolarConfig(latitude_deg=51.0)
        profile = clear_sky_profile(year, config)
        per_day = profile.reshape(365, -1).max(axis=1)
        winter_peak = per_day[:30].max()
        summer_peak = per_day[160:190].max()
        # Paper: winter peaks ~75% below summer at these latitudes.
        assert winter_peak < 0.6 * summer_peak

    def test_latitude_affects_day_length(self):
        june = grid_days(datetime(2020, 6, 20), 1)
        north = clear_sky_profile(june, SolarConfig(latitude_deg=65.0))
        south = clear_sky_profile(june, SolarConfig(latitude_deg=35.0))
        # Midsummer at 65N has more daylight samples than at 35N.
        assert np.count_nonzero(north) > np.count_nonzero(south)

    def test_overcast_day_suppresses_peak(self, day_grid, rng):
        model = default_solar_regimes()
        overcast_index = model.names.index("overcast")
        sunny_index = model.names.index("sunny")
        overcast = synthesize_solar(
            day_grid, rng=np.random.default_rng(5),
            regime_indices=np.array([overcast_index]),
        )
        sunny = synthesize_solar(
            day_grid, rng=np.random.default_rng(5),
            regime_indices=np.array([sunny_index]),
        )
        # Paper Fig 2a: overcast peak 3.5% vs 77% on a sunny day.
        assert overcast.values.max() < 0.2
        assert sunny.values.max() > 0.5

    def test_partial_day_grid_rejected(self, rng):
        grid = grid_days(datetime(2020, 5, 1), 1.5)
        with pytest.raises(TraceError):
            synthesize_solar(grid, rng=rng)

    def test_wrong_regime_count_rejected(self, week_grid, rng):
        with pytest.raises(TraceError):
            synthesize_solar(week_grid, rng=rng, regime_indices=np.array([0]))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SolarConfig(latitude_deg=90.0)
        with pytest.raises(ConfigurationError):
            SolarConfig(capacity_mw=-1.0)


class TestWindSynthesis:
    def test_power_curve_regions(self):
        config = WindConfig()
        speeds = np.array([0.0, 2.9, 3.0, 8.0, 12.0, 20.0, 25.0, 30.0])
        power = turbine_power_curve(speeds, config)
        assert power[0] == 0.0 and power[1] == 0.0          # below cut-in
        assert 0.0 <= power[2] < 0.05                        # at cut-in
        assert 0.0 < power[3] < 1.0                          # ramp
        assert power[4] == pytest.approx(1.0)                # rated
        assert power[5] == pytest.approx(1.0)                # rated plateau
        assert power[6] == 0.0 and power[7] == 0.0           # cut-out

    def test_power_curve_monotone_on_ramp(self):
        config = WindConfig()
        speeds = np.linspace(config.cut_in_ms, config.rated_ms, 50)
        power = turbine_power_curve(speeds, config)
        assert np.all(np.diff(power) >= 0)

    def test_values_in_unit_range(self, month_grid, rng):
        trace = synthesize_wind(month_grid, rng=rng)
        assert trace.values.min() >= 0.0
        assert trace.values.max() <= 1.0

    def test_seeded_determinism(self, week_grid):
        a = synthesize_wind(week_grid, seed=42)
        b = synthesize_wind(week_grid, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_wind_rarely_zero(self):
        # Paper Fig 2a: wind "rarely goes down to zero".
        year = grid_days(datetime(2020, 1, 1), 365)
        trace = synthesize_wind(year, seed=7)
        assert trace.zero_fraction() < 0.30

    def test_wind_median_modest(self):
        # Paper Fig 2b: median wind at most ~20% of peak capacity.
        year = grid_days(datetime(2020, 1, 1), 365)
        trace = synthesize_wind(year, seed=7)
        assert trace.percentile(50) < 0.30

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WindConfig(cut_in_ms=13.0)  # violates cut_in < rated
        with pytest.raises(ConfigurationError):
            WindConfig(reversion_hours=0.0)
        with pytest.raises(ConfigurationError):
            WindConfig(mean_speed_ms=0.0)


class TestCatalog:
    def test_default_catalog_contains_paper_trio(self):
        catalog = default_european_catalog()
        for name in ("NO-solar", "UK-wind", "PT-wind"):
            assert name in catalog

    def test_catalog_unique_names(self):
        catalog = default_european_catalog()
        assert len(set(catalog.names)) == len(catalog)

    def test_subset_and_kind_filters(self):
        catalog = default_european_catalog()
        trio = catalog.subset(["NO-solar", "UK-wind"])
        assert trio.names == ["NO-solar", "UK-wind"]
        wind = catalog.of_kind("wind")
        assert all(s.kind == "wind" for s in wind)

    def test_unknown_site_raises(self):
        catalog = default_european_catalog()
        with pytest.raises(KeyError):
            catalog["Atlantis-solar"]

    def test_distance_matrix_symmetric_zero_diagonal(self):
        catalog = default_european_catalog()
        distances = catalog.distance_matrix_km()
        assert np.allclose(distances, distances.T)
        assert np.all(np.diag(distances) == 0.0)
        # Norway to Portugal is far; sanity check the haversine.
        i = catalog.names.index("NO-solar")
        j = catalog.names.index("PT-wind")
        assert 1500 < distances[i, j] < 3000

    def test_with_capacity(self):
        catalog = default_european_catalog().with_capacity(100.0)
        assert all(s.capacity_mw == 100.0 for s in catalog)

    def test_catalog_synthesis_covers_all_sites(self, rng):
        catalog = default_european_catalog().subset(
            ["NO-solar", "UK-wind", "PT-wind"]
        )
        grid = grid_days(datetime(2020, 5, 1), 4)
        traces = synthesize_catalog_traces(catalog, grid, rng=rng)
        assert set(traces) == {"NO-solar", "UK-wind", "PT-wind"}
        for name, trace in traces.items():
            assert trace.name == name
            assert len(trace) == grid.n

    def test_catalog_synthesis_solar_uses_site_latitude(self, rng):
        catalog = default_european_catalog().subset(["NO-solar", "ES-solar"])
        winter = grid_days(datetime(2020, 1, 1), 14)
        traces = synthesize_catalog_traces(catalog, winter, seed=11)
        # Winter Norwegian solar must be far weaker than Andalusian.
        assert (
            traces["NO-solar"].energy_mwh()
            < 0.7 * traces["ES-solar"].energy_mwh()
        )

    def test_nearby_sites_more_correlated(self):
        catalog = default_european_catalog().subset(
            ["UK-wind", "NL-wind", "RO-wind"]
        )
        grid = grid_days(datetime(2020, 5, 1), 120)
        traces = synthesize_catalog_traces(catalog, grid, seed=13)
        uk = traces["UK-wind"].values
        nl = traces["NL-wind"].values
        ro = traces["RO-wind"].values
        near = np.corrcoef(uk, nl)[0, 1]
        far = np.corrcoef(uk, ro)[0, 1]
        assert near > far


class TestVectorizedKernels:
    """Golden tests: the lfilter/searchsorted kernels against the loop
    references they replaced, on shared seeds."""

    def test_ou_matches_loop_reference(self):
        config = WindConfig()
        for seed, steps in ((0, 500), (3, 96 * 30), (11, 7)):
            rng = np.random.default_rng(seed)
            targets = config.mean_speed_ms * (
                0.5 + rng.random(steps)
            )
            a = np.random.default_rng(seed + 100)
            b = np.random.default_rng(seed + 100)
            fast = ou_speed_path(targets, 0.25, config, a)
            slow = _ou_speed_path_loop(targets, 0.25, config, b)
            # lfilter reassociates the recurrence's additions, so the
            # outputs agree to accumulated rounding, not bit-for-bit.
            np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)
            assert a.bit_generator.state == b.bit_generator.state

    def test_ou_empty(self):
        config = WindConfig()
        rng = np.random.default_rng(0)
        assert len(ou_speed_path(np.empty(0), 0.25, config, rng)) == 0

    def test_ar1_bit_identical_to_loop(self):
        for seed in range(4):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(seed)
            fast = intraday_ar1(3000, 0.28, 0.45, a, initial=0.1)
            slow = _intraday_ar1_loop(3000, 0.28, 0.45, b, initial=0.1)
            # Identical float ops in identical order: exact equality.
            assert np.array_equal(fast, slow)
            assert a.bit_generator.state == b.bit_generator.state

    def test_regime_modulation_matches_per_day_reference(self):
        """Streak-batched evaluation == one intraday_ar1 call per day."""
        model = default_solar_regimes()
        steps_per_day = 96
        for seed in range(3):
            rng = np.random.default_rng(seed)
            days = sample_regime_sequence(model, 60, rng)
            a = np.random.default_rng(seed + 50)
            b = np.random.default_rng(seed + 50)
            fast = regime_modulation(
                model.regimes, days, steps_per_day, a
            )
            levels = np.array([r.level for r in model.regimes])
            reference = np.empty(len(days) * steps_per_day)
            state = 0.0
            for day, index in enumerate(days):
                regime = model.regimes[int(index)]
                fluct = _intraday_ar1_loop(
                    steps_per_day, regime.volatility,
                    regime.persistence, b, state,
                )
                state = fluct[-1]
                start = day * steps_per_day
                reference[start : start + steps_per_day] = (
                    levels[int(index)] + fluct
                )
            reference = np.clip(reference, 0.0, 1.25)
            assert np.array_equal(fast, reference)
            assert a.bit_generator.state == b.bit_generator.state

    def test_regime_sampling_matches_choice_reference(self):
        """searchsorted inverse-CDF == the rng.choice loop it replaced,
        states and RNG stream both."""
        for model in (default_solar_regimes(), default_wind_regimes()):
            for seed in range(3):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed)
                fast = sample_regime_sequence(model, 200, a)
                k = len(model.regimes)
                reference = np.empty(200, dtype=int)
                reference[0] = b.choice(k, p=model.initial)
                for day in range(1, 200):
                    reference[day] = b.choice(
                        k, p=model.transition[reference[day - 1]]
                    )
                assert np.array_equal(fast, reference)
                assert a.bit_generator.state == b.bit_generator.state

    def test_latent_quantiles_match_erf_reference(self):
        """ndtr == the 0.5*(1+erf(x/sqrt(2))) elementwise mapping."""
        from math import erf, sqrt

        model = default_solar_regimes()
        latent = np.random.default_rng(9).standard_normal(500)
        fast = regime_sequence_from_latent(model, latent)
        stationary = stationary_distribution(model)
        edges = np.cumsum(stationary)
        quantiles = np.array(
            [0.5 * (1.0 + erf(x / sqrt(2.0))) for x in latent]
        )
        reference = np.searchsorted(
            edges, quantiles, side="right"
        ).clip(0, len(model.regimes) - 1)
        assert np.array_equal(fast, reference)
