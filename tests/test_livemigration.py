"""Tests for the pre-copy live-migration model (footnote-2 future work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    EventKind,
    LiveMigrationModel,
    ServerSpec,
    amplification_factor,
    estimate_migration,
)
from repro.errors import ConfigurationError
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import VMClass, VMRequest, VMType

from datetime import datetime, timedelta

GIB = 2**30


class TestModelValidation:
    def test_defaults_valid(self):
        model = LiveMigrationModel()
        assert model.dirty_to_link_ratio < 1.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LiveMigrationModel(link_gbps=0.0)
        with pytest.raises(ConfigurationError):
            LiveMigrationModel(dirty_rate_bytes_per_s=-1.0)
        with pytest.raises(ConfigurationError):
            LiveMigrationModel(downtime_target_bytes=0.0)
        with pytest.raises(ConfigurationError):
            LiveMigrationModel(max_rounds=0)
        with pytest.raises(ConfigurationError):
            LiveMigrationModel(slowdown_during_copy=1.0)


class TestEstimates:
    def test_zero_dirty_rate_single_copy(self):
        model = LiveMigrationModel(dirty_rate_bytes_per_s=0.0)
        estimate = estimate_migration(8 * GIB, model)
        assert estimate.total_bytes == pytest.approx(8 * GIB)
        assert estimate.rounds == 1
        assert estimate.converged
        assert estimate.amplification == pytest.approx(1.0)

    def test_duration_is_bytes_over_link(self):
        model = LiveMigrationModel(
            link_gbps=10.0, dirty_rate_bytes_per_s=0.0
        )
        estimate = estimate_migration(10e9, model)
        # 10 GB over 10 Gbps (1.25 GB/s) = 8 seconds.
        assert estimate.duration_s == pytest.approx(8.0)

    def test_dirtying_amplifies(self):
        quiet = estimate_migration(
            16 * GIB, LiveMigrationModel(dirty_rate_bytes_per_s=0.0)
        )
        busy = estimate_migration(
            16 * GIB, LiveMigrationModel(dirty_rate_bytes_per_s=300e6)
        )
        assert busy.total_bytes > quiet.total_bytes
        assert busy.rounds > 1
        assert busy.amplification > 1.0

    def test_downtime_bounded_by_target_when_converged(self):
        model = LiveMigrationModel()
        estimate = estimate_migration(32 * GIB, model)
        assert estimate.converged
        assert estimate.downtime_s <= (
            model.downtime_target_bytes / model.link_bytes_per_s + 1e-9
        )

    def test_nonconvergent_when_dirty_exceeds_link(self):
        model = LiveMigrationModel(
            link_gbps=1.0, dirty_rate_bytes_per_s=200e6  # 1.6x link
        )
        estimate = estimate_migration(8 * GIB, model)
        assert not estimate.converged
        # Blackout transfers a full memory-sized dirty set.
        assert estimate.downtime_s > 1.0

    def test_round_cap_respected(self):
        model = LiveMigrationModel(
            link_gbps=10.0,
            dirty_rate_bytes_per_s=1.2e9,  # rho ~ 0.96, slow convergence
            max_rounds=3,
            downtime_target_bytes=1.0,
        )
        estimate = estimate_migration(8 * GIB, model)
        assert estimate.rounds <= 3

    def test_zero_memory(self):
        estimate = estimate_migration(0.0)
        assert estimate.total_bytes == 0.0
        assert estimate.amplification == 1.0

    def test_negative_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_migration(-1.0)

    def test_execution_delay_components(self):
        model = LiveMigrationModel(slowdown_during_copy=0.2)
        estimate = estimate_migration(8 * GIB, model)
        copy_time = estimate.duration_s - estimate.downtime_s
        assert estimate.execution_delay_s == pytest.approx(
            0.2 * copy_time + estimate.downtime_s
        )

    def test_amplification_factor_helper(self):
        assert amplification_factor(0.0) == 1.0
        assert amplification_factor(8 * GIB) >= 1.0

    @given(
        memory_gib=st.floats(min_value=0.5, max_value=512.0),
        dirty_mbps=st.floats(min_value=0.0, max_value=800.0),
    )
    @settings(max_examples=50)
    def test_invariants(self, memory_gib, dirty_mbps):
        model = LiveMigrationModel(dirty_rate_bytes_per_s=dirty_mbps * 1e6)
        estimate = estimate_migration(memory_gib * GIB, model)
        # Wire bytes at least one memory copy; duration covers them.
        assert estimate.total_bytes >= memory_gib * GIB - 1e-6
        assert estimate.duration_s >= estimate.downtime_s
        assert estimate.downtime_s >= 0.0
        assert 1 <= estimate.rounds <= model.max_rounds
        assert estimate.execution_delay_s <= estimate.duration_s + 1e-9

    @given(dirty_mbps=st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=30)
    def test_amplification_monotone_in_dirty_rate(self, dirty_mbps):
        low = amplification_factor(
            16 * GIB, LiveMigrationModel(dirty_rate_bytes_per_s=0.0)
        )
        high = amplification_factor(
            16 * GIB,
            LiveMigrationModel(dirty_rate_bytes_per_s=dirty_mbps * 1e6),
        )
        assert high >= low - 1e-9


class TestDatacenterIntegration:
    def _run(self, migration_model):
        grid = TimeGrid(datetime(2020, 5, 1), timedelta(minutes=15), 3)
        trace = PowerTrace(
            grid, np.array([1.0, 0.0, 0.0]), "t", "wind"
        )
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=2, server=ServerSpec(cores=10)),
            admission_utilization=1.0,
            migration_model=migration_model,
        )
        vm_type = VMType("T2", 2, 8.0)
        requests = [VMRequest(0, 0, 5, vm_type, VMClass.STABLE)]
        return Datacenter(config, trace).run(requests)

    def test_amplified_eviction_traffic(self):
        model = LiveMigrationModel(dirty_rate_bytes_per_s=300e6)
        plain = self._run(None)
        amplified = self._run(model)
        plain_bytes = plain.events.bytes_of_kind(EventKind.EVICT)
        amplified_bytes = amplified.events.bytes_of_kind(EventKind.EVICT)
        assert plain_bytes == pytest.approx(8 * GIB)
        assert amplified_bytes > plain_bytes
        expected = estimate_migration(8 * GIB, model).total_bytes
        assert amplified_bytes == pytest.approx(expected)
