"""Tests for the per-VM detailed multi-site executor, including its
agreement with the fluid displacement model."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import ClusterSpec, ServerSpec
from repro.errors import SchedulingError
from repro.forecast import NoisyOracleForecaster
from repro.sched import (
    MIPScheduler,
    Placement,
    SchedulingProblem,
    SiteCapacity,
    problem_from_forecasts,
)
from repro.sim import execute_placement, execute_placement_detailed
from repro.traces import PowerTrace, synthesize_catalog_traces
from repro.traces import default_european_catalog
from repro.units import TimeGrid
from repro.workload import Application, VMType, generate_applications

START = datetime(2020, 5, 1)


def make_grid(n):
    return TimeGrid(START, timedelta(hours=1), n)


def trace_from(values, name, total_capacity_mw=400.0):
    grid = make_grid(len(values))
    return PowerTrace(
        grid, np.array(values, float), name, "wind", total_capacity_mw
    )


def two_site_setup(values_a, values_b, apps, total=400):
    n = len(values_a)
    problem = SchedulingProblem(
        make_grid(n),
        (
            SiteCapacity(
                "a", total, np.floor(np.array(values_a) * total)
            ),
            SiteCapacity(
                "b", total, np.floor(np.array(values_b) * total)
            ),
        ),
        tuple(apps),
        bytes_per_core=4 * 2**30,
    )
    traces = {
        "a": trace_from(values_a, "a"),
        "b": trace_from(values_b, "b"),
    }
    return problem, traces


def make_app(app_id=0, arrival=0, duration=6, vms=10, cores=2,
             stable=1.0):
    return Application(
        app_id, arrival, duration, vms,
        VMType(f"T{cores}", cores, cores * 4.0), stable,
    )


CLUSTER = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))


class TestDetailedExecution:
    def test_no_dip_no_traffic(self):
        problem, traces = two_site_setup(
            [1.0] * 6, [1.0] * 6, [make_app()]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        result = execute_placement_detailed(
            problem, placement, traces, CLUSTER
        )
        assert result.total_transfer_gb() == 0.0
        assert result.homeless_vm_steps == 0

    def test_dip_migrates_stable_vms_to_sister_site(self):
        values_a = [1.0, 1.0, 0.0, 0.0, 1.0, 1.0]
        problem, traces = two_site_setup(
            values_a, [1.0] * 6, [make_app(stable=1.0)]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        result = execute_placement_detailed(
            problem, placement, traces, CLUSTER
        )
        # All 10 VMs (20 cores, 80 GiB) leave a at step 2 and land at b.
        out_a = result.out_bytes_series("a")
        in_b = result.in_bytes_series("b")
        assert out_a[2] == pytest.approx(10 * 8 * 2**30)
        assert in_b[2] == pytest.approx(10 * 8 * 2**30)
        assert result.homeless_vm_steps == 0

    def test_degradable_vms_pause_instead(self):
        values_a = [1.0, 1.0, 0.0, 0.0, 1.0, 1.0]
        problem, traces = two_site_setup(
            values_a, [1.0] * 6, [make_app(stable=0.0)]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        result = execute_placement_detailed(
            problem, placement, traces, CLUSTER
        )
        assert result.total_transfer_gb() == 0.0
        records_a = result.records["a"]
        assert records_a[2].n_paused == 10
        assert records_a[4].n_resumed == 10

    def test_nowhere_to_land_counts_homeless(self):
        # Both sites black out: stable VMs have nowhere to go.
        values = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        problem, traces = two_site_setup(
            values, values, [make_app(stable=1.0)]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        result = execute_placement_detailed(
            problem, placement, traces, CLUSTER
        )
        assert result.homeless_vm_steps > 0

    def test_missing_trace_rejected(self):
        problem, traces = two_site_setup(
            [1.0] * 6, [1.0] * 6, [make_app()]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        with pytest.raises(SchedulingError):
            execute_placement_detailed(
                problem, placement, {"a": traces["a"]}, CLUSTER
            )

    def test_wrong_length_trace_rejected(self):
        problem, traces = two_site_setup(
            [1.0] * 6, [1.0] * 6, [make_app()]
        )
        placement = Placement({0: {"a": 10, "b": 0}})
        short = trace_from([1.0] * 3, "a")
        with pytest.raises(SchedulingError):
            execute_placement_detailed(
                problem, placement, {"a": short, "b": traces["b"]},
                CLUSTER,
            )

    def test_running_cores_never_exceed_budget(self):
        rng = np.random.default_rng(7)
        values_a = np.clip(rng.uniform(0, 1, 24), 0, 1)
        values_b = np.clip(rng.uniform(0, 1, 24), 0, 1)
        apps = [
            make_app(i, arrival=int(rng.integers(0, 12)),
                     duration=int(rng.integers(4, 12)), vms=8,
                     stable=0.5)
            for i in range(6)
        ]
        problem, traces = two_site_setup(values_a, values_b, apps)
        placement = Placement(
            {app.app_id: {"a": 4, "b": 4} for app in apps}
        )
        result = execute_placement_detailed(
            problem, placement, traces, CLUSTER
        )
        for name in ("a", "b"):
            for record in result.records[name]:
                assert record.running_cores <= record.budget


class TestFluidAgreement:
    def test_fluid_and_detailed_same_order_of_magnitude(self):
        """The fluid displacement model and the per-VM executor must
        agree on the scale of migration traffic for the same MIP
        placement on a realistic scenario."""
        catalog = default_european_catalog().subset(
            ["UK-wind", "PT-wind"]
        )
        grid = make_grid(4 * 24)
        traces = synthesize_catalog_traces(catalog, grid, seed=77)
        total_cores = {name: 4000 for name in traces}
        apps = generate_applications(
            grid, 30, seed=78, mean_vm_count=20, mean_duration_days=1.5
        )
        problem = problem_from_forecasts(
            grid, traces, total_cores, apps,
            NoisyOracleForecaster(seed=79),
        )
        placement = MIPScheduler(time_limit_s=60.0).schedule(problem)
        actual = {
            name: np.floor(traces[name].values * total_cores[name])
            for name in traces
        }
        fluid = execute_placement(problem, placement, actual)
        detailed = execute_placement_detailed(
            problem, placement, traces,
            ClusterSpec(n_servers=100, server=ServerSpec(cores=40)),
        )
        fluid_gb = fluid.total_transfer_gb()
        detailed_gb = detailed.total_transfer_gb()
        # The fluid model counts out+in; detailed counts each transfer
        # once (out side).  Compare fluid's out-side half against the
        # detailed total within a generous factor.
        if detailed_gb == 0.0:
            assert fluid_gb < 2000.0  # both see a quiet scenario
        else:
            ratio = (fluid_gb / 2.0) / detailed_gb
            assert 0.2 < ratio < 5.0, (fluid_gb, detailed_gb)
