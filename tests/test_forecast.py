"""Tests for the forecast subpackage."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ForecastError
from repro.forecast import (
    ClimatologyForecaster,
    Forecast,
    HorizonNoise,
    NoisyOracleForecaster,
    PersistenceForecaster,
    horizon_mape_profile,
    mae,
    mape,
    paper_calibrated_noise,
    rmse,
    smape,
)
from repro.traces import PowerTrace, synthesize_solar, synthesize_wind
from repro.units import grid_days


@pytest.fixture(scope="module")
def solar_trace():
    return synthesize_solar(grid_days(datetime(2020, 4, 1), 60), seed=21)


@pytest.fixture(scope="module")
def wind_trace():
    return synthesize_wind(grid_days(datetime(2020, 4, 1), 60), seed=22)


class TestForecastContainer:
    def test_valid(self, solar_trace):
        grid = solar_trace.grid.subgrid(10, 4)
        forecast = Forecast(grid, np.zeros(4), 10, "s")
        assert len(forecast) == 4
        assert forecast.horizon_steps(0) == 1
        assert forecast.horizon_steps(3) == 4

    def test_shape_mismatch_rejected(self, solar_trace):
        grid = solar_trace.grid.subgrid(0, 4)
        with pytest.raises(ForecastError):
            Forecast(grid, np.zeros(3), 0)

    def test_negative_values_rejected(self, solar_trace):
        grid = solar_trace.grid.subgrid(0, 2)
        with pytest.raises(ForecastError):
            Forecast(grid, np.array([0.1, -0.1]), 0)

    def test_negative_issue_rejected(self, solar_trace):
        grid = solar_trace.grid.subgrid(0, 2)
        with pytest.raises(ForecastError):
            Forecast(grid, np.zeros(2), -1)

    def test_horizon_out_of_window(self, solar_trace):
        grid = solar_trace.grid.subgrid(0, 2)
        forecast = Forecast(grid, np.zeros(2), 0)
        with pytest.raises(ForecastError):
            forecast.horizon_steps(2)

    def test_power_mw(self, solar_trace):
        grid = solar_trace.grid.subgrid(0, 2)
        forecast = Forecast(grid, np.array([0.5, 1.0]), 0)
        np.testing.assert_allclose(forecast.power_mw(400), [200.0, 400.0])
        with pytest.raises(ForecastError):
            forecast.power_mw(0)


class TestNoisyOracle:
    def test_window_bounds_checked(self, solar_trace):
        model = NoisyOracleForecaster(seed=1)
        with pytest.raises(ForecastError):
            model.forecast(solar_trace, len(solar_trace) - 5, 10)
        with pytest.raises(ForecastError):
            model.forecast(solar_trace, 0, 0)
        with pytest.raises(ForecastError):
            model.forecast(solar_trace, -1, 10)

    def test_deterministic_per_issue(self, solar_trace):
        model = NoisyOracleForecaster(seed=1)
        a = model.forecast(solar_trace, 100, 96)
        b = model.forecast(solar_trace, 100, 96)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_issues_differ(self, wind_trace):
        model = NoisyOracleForecaster(seed=1)
        a = model.forecast(wind_trace, 100, 96)
        b = model.forecast(wind_trace, 101, 96)
        assert not np.array_equal(a.values[1:], b.values[:-1])

    def test_zero_actual_stays_zero(self, solar_trace):
        # Solar nights must be forecast as exactly zero.
        model = NoisyOracleForecaster(seed=1)
        forecast = model.forecast(solar_trace, 0, 96)
        actual = solar_trace.values[:96]
        assert np.all(forecast.values[actual == 0.0] == 0.0)

    def test_error_grows_with_horizon(self, wind_trace):
        model = NoisyOracleForecaster(seed=3)
        horizons = {"3h": 12, "day": 96, "week": 96 * 7}
        profile = horizon_mape_profile(model, wind_trace, horizons, 48)
        assert profile["3h"] < profile["day"] < profile["week"]

    def test_paper_mape_bands(self, solar_trace, wind_trace):
        # Paper Fig 5: 3h 8.5-9%, day-ahead 18-25%, week 44-75%.
        model = NoisyOracleForecaster(seed=9)
        horizons = {"3h": 12, "day": 96, "week": 96 * 7}
        for trace in (solar_trace, wind_trace):
            profile = horizon_mape_profile(model, trace, horizons, 24)
            assert 0.05 < profile["3h"] < 0.14
            assert 0.14 < profile["day"] < 0.32
            assert 0.35 < profile["week"] < 0.85

    def test_values_stay_normalized(self, wind_trace):
        model = NoisyOracleForecaster(seed=4)
        forecast = model.forecast(wind_trace, 0, 96 * 7)
        assert forecast.values.min() >= 0.0
        assert forecast.values.max() <= 1.0


class TestHorizonNoise:
    def test_sigma_monotone(self):
        noise = paper_calibrated_noise()
        hours = np.array([1.0, 3.0, 24.0, 168.0])
        sigma = noise.sigma(hours)
        assert np.all(np.diff(sigma) > 0)

    def test_sigma_capped(self):
        noise = HorizonNoise(scale=1.0, exponent=1.0, max_sigma=0.5)
        assert noise.sigma(np.array([100.0]))[0] == 0.5

    def test_validation(self):
        with pytest.raises(ForecastError):
            HorizonNoise(scale=-1.0)
        with pytest.raises(ForecastError):
            HorizonNoise(correlation=1.0)


class TestBaselines:
    def test_persistence_holds_last_value(self, wind_trace):
        model = PersistenceForecaster()
        forecast = model.forecast(wind_trace, 50, 10)
        np.testing.assert_allclose(forecast.values, wind_trace.values[49])

    def test_persistence_at_origin_is_zero(self, wind_trace):
        forecast = PersistenceForecaster().forecast(wind_trace, 0, 5)
        np.testing.assert_allclose(forecast.values, 0.0)

    def test_climatology_learns_diurnal_shape(self, solar_trace):
        model = ClimatologyForecaster()
        issue = 30 * 96
        forecast = model.forecast(solar_trace, issue, 96)
        hours = forecast.grid.hour_of_day()
        # Climatology should predict zero at night, positive at noon.
        assert np.all(forecast.values[(hours < 3)] == 0.0)
        assert forecast.values[(hours > 11) & (hours < 13)].max() > 0.1

    def test_climatology_no_history_predicts_zero(self, solar_trace):
        forecast = ClimatologyForecaster().forecast(solar_trace, 0, 10)
        np.testing.assert_allclose(forecast.values, 0.0)

    def test_climatology_history_days_limit(self, solar_trace):
        short = ClimatologyForecaster(history_days=3)
        long = ClimatologyForecaster()
        issue = 40 * 96
        a = short.forecast(solar_trace, issue, 96)
        b = long.forecast(solar_trace, issue, 96)
        assert not np.array_equal(a.values, b.values)

    def test_climatology_validation(self):
        with pytest.raises(ForecastError):
            ClimatologyForecaster(history_days=0)

    def test_persistence_beats_climatology_short_horizon(self, wind_trace):
        horizons = {"1step": 1}
        persistence = horizon_mape_profile(
            PersistenceForecaster(), wind_trace, horizons, 24
        )
        climatology = horizon_mape_profile(
            ClimatologyForecaster(), wind_trace, horizons, 24
        )
        assert persistence["1step"] < climatology["1step"]


class TestMetrics:
    def test_mae_rmse_basics(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.0, 2.0, 5.0])
        assert mae(actual, predicted) == pytest.approx(2.0 / 3.0)
        assert rmse(actual, predicted) == pytest.approx(np.sqrt(4.0 / 3.0))

    def test_mape_excludes_small_actuals(self):
        actual = np.array([0.0, 0.01, 0.5])
        predicted = np.array([1.0, 1.0, 0.25])
        # Only the 0.5 sample clears the default 0.05 floor.
        assert mape(actual, predicted) == pytest.approx(0.5)

    def test_mape_all_below_floor_is_nan(self):
        assert np.isnan(mape(np.array([0.0]), np.array([0.5])))

    def test_smape_zero_on_perfect_zero(self):
        assert smape(np.array([0.0, 0.0]), np.array([0.0, 0.0])) == 0.0

    def test_smape_bounded(self):
        actual = np.array([0.0, 1.0])
        predicted = np.array([1.0, 0.0])
        assert smape(actual, predicted) == pytest.approx(2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ForecastError):
            mae(np.zeros(2), np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(ForecastError):
            rmse(np.zeros(0), np.zeros(0))

    def test_profile_validation(self, wind_trace):
        model = PersistenceForecaster()
        with pytest.raises(ForecastError):
            horizon_mape_profile(model, wind_trace, {"bad": 0})
        with pytest.raises(ForecastError):
            horizon_mape_profile(model, wind_trace, {"h": 1}, issue_every=0)

    def test_profile_horizon_longer_than_trace(self, wind_trace):
        model = PersistenceForecaster()
        result = horizon_mape_profile(
            model, wind_trace, {"huge": len(wind_trace) + 1}
        )
        assert np.isnan(result["huge"])

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=30)
    def test_perfect_forecast_zero_error(self, values):
        arr = np.array(values)
        assert mae(arr, arr) == 0.0
        assert rmse(arr, arr) == 0.0
        assert mape(arr, arr) == 0.0
        assert smape(arr, arr) == 0.0
