"""Tests for analysis stats and report formatting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    empirical_cdf,
    format_cdf_points,
    format_series_sample,
    format_table,
    nonzero_cdf,
    percentile_ratio,
    rolling_min,
    series_cov,
)
from repro.errors import ConfigurationError


class TestStats:
    def test_empirical_cdf_basics(self):
        values, probabilities = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probabilities, [1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([]))

    def test_nonzero_cdf_filters(self):
        values, _ = nonzero_cdf(np.array([0.0, 0.0, 5.0, 2.0]))
        np.testing.assert_allclose(values, [2.0, 5.0])

    def test_nonzero_cdf_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            nonzero_cdf(np.zeros(5))

    def test_percentile_ratio(self):
        values = np.concatenate([np.full(99, 1.0), [10.0]])
        assert percentile_ratio(values, 99, 50) > 1.0

    def test_percentile_ratio_zero_cases(self):
        assert percentile_ratio(np.zeros(10)) == 1.0
        values = np.concatenate([np.zeros(90), np.full(10, 5.0)])
        assert percentile_ratio(values, 99, 50) == float("inf")

    def test_rolling_min(self):
        values = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        np.testing.assert_allclose(rolling_min(values, 2), [1.0, 1.0, 5.0])

    def test_rolling_min_validation(self):
        with pytest.raises(ConfigurationError):
            rolling_min(np.ones(3), 0)

    def test_series_cov(self):
        assert series_cov(np.full(10, 2.0)) == 0.0
        assert series_cov(np.zeros(3)) == float("inf")

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1, max_size=100,
        )
    )
    @settings(max_examples=30)
    def test_cdf_is_monotone(self, values):
        ordered, probabilities = empirical_cdf(np.array(values))
        assert np.all(np.diff(ordered) >= 0)
        assert np.all(np.diff(probabilities) > 0)
        assert probabilities[-1] == pytest.approx(1.0)


class TestReport:
    def test_format_table(self):
        table = format_table(
            ["Policy", "Total"],
            [["Greedy", 306966], ["MIP", 209961.5]],
            title="Table 1",
        )
        assert "Table 1" in table
        assert "306,966" in table
        assert "209,961.50" in table

    def test_format_table_validation(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])
        with pytest.raises(ConfigurationError):
            format_table(["A"], [["x", "y"]])

    def test_format_cdf_points(self):
        text = format_cdf_points(np.arange(100.0), unit="GB")
        assert "p50" in text and "GB" in text

    def test_format_cdf_points_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_cdf_points(np.array([]))

    def test_format_series_sample(self):
        text = format_series_sample(np.arange(1000.0), n_points=5)
        assert text.count("\n") == 4

    def test_format_series_validation(self):
        with pytest.raises(ConfigurationError):
            format_series_sample(np.array([]))
        with pytest.raises(ConfigurationError):
            format_series_sample(np.ones(3), n_points=0)
