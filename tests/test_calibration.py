"""Tests for the trace calibration targets."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces import (
    CalibrationTarget,
    PowerTrace,
    calibration_report,
    is_calibrated,
    solar_targets,
    synthesize_solar,
    synthesize_wind,
    wind_targets,
)
from repro.units import TimeGrid, grid_days

START = datetime(2015, 1, 1)


@pytest.fixture(scope="module")
def year_solar():
    return synthesize_solar(grid_days(START, 365), seed=41)


@pytest.fixture(scope="module")
def year_wind():
    return synthesize_wind(grid_days(START, 365), seed=42)


class TestTargets:
    def test_target_validation(self):
        with pytest.raises(ConfigurationError):
            CalibrationTarget("x", 1.0, 0.0, "inverted")

    def test_contains(self):
        target = CalibrationTarget("x", 0.2, 0.8, "test")
        assert target.contains(0.5)
        assert target.contains(0.2)
        assert not target.contains(0.1)

    def test_default_target_sets_nonempty(self):
        assert len(solar_targets()) >= 3
        assert len(wind_targets()) >= 3


class TestReport:
    def test_builtin_solar_is_calibrated(self, year_solar):
        report = calibration_report(year_solar)
        failed = [r for r in report if not r.passed]
        assert not failed, [
            (r.target.name, r.value, r.target.low, r.target.high)
            for r in failed
        ]
        assert is_calibrated(year_solar)

    def test_builtin_wind_is_calibrated(self, year_wind):
        assert is_calibrated(year_wind)

    def test_flat_trace_fails_solar_targets(self):
        grid = TimeGrid(START, timedelta(minutes=15), 96)
        flat = PowerTrace(grid, np.full(96, 0.5), "flat", "solar")
        assert not is_calibrated(flat)

    def test_unknown_kind_requires_explicit_targets(self):
        grid = TimeGrid(START, timedelta(minutes=15), 96)
        generic = PowerTrace(grid, np.full(96, 0.5), "x", "generic")
        with pytest.raises(ConfigurationError):
            calibration_report(generic)
        # But explicit targets work for any kind.
        target = CalibrationTarget("mean", 0.4, 0.6, "custom")
        report = calibration_report(generic, [target])
        assert report[0].passed

    def test_unknown_statistic_rejected(self, year_wind):
        bad = CalibrationTarget("entropy", 0.0, 1.0, "nope")
        with pytest.raises(ConfigurationError):
            calibration_report(year_wind, [bad])

    def test_report_values_match_trace(self, year_wind):
        report = calibration_report(year_wind)
        by_name = {r.target.name: r.value for r in report}
        assert by_name["zero_fraction"] == pytest.approx(
            year_wind.zero_fraction()
        )
        assert by_name["median"] == pytest.approx(
            year_wind.percentile(50)
        )
