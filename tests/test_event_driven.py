"""Golden equivalence tests for the event-driven simulation engines and
the vectorized MIP assembly.

The event-driven single-site engine, the event-driven detailed executor,
and the vectorized constraint assembly each have a dense/loop reference
implementation sharing the same code paths; these tests pin them
result-identical across workload shapes, power models, eviction orders,
and pathological budget traces.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    ServerSpec,
)
from repro.cluster.migration import EvictionOrder
from repro.cluster.power import LinearCorePower, ServerGranularPower
from repro.errors import ConfigurationError
from repro.sched import (
    MIPScheduler,
    Placement,
    SchedulingProblem,
    SiteCapacity,
)
from repro.sched.mip import _Layout, _assemble, _assemble_reference
from repro.sim import execute_placement_detailed
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import Application, VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)

VM_TYPES = (
    VMType("D2", 2, 8.0),
    VMType("D4", 4, 16.0),
    VMType("D8", 8, 32.0),
    VMType("D16", 16, 64.0),
)


def make_trace(values):
    grid = TimeGrid(START, timedelta(minutes=15), len(values))
    return PowerTrace(grid, np.asarray(values, dtype=float), "t", "wind")


def random_scenario(seed, n=2000, n_requests=2000, **config_overrides):
    """Noisy diurnal power with dead spans plus random arrivals."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = np.clip(
        0.5 + 0.45 * np.sin(2 * np.pi * t / 96) + rng.normal(0, 0.08, n),
        0.0,
        1.0,
    )
    values[(t % 500) < 30] = 0.0
    trace = make_trace(values)
    defaults = dict(
        cluster=ClusterSpec(n_servers=40, server=ServerSpec()),
        queue_patience_steps=12,
    )
    defaults.update(config_overrides)
    config = DatacenterConfig(**defaults)
    requests = []
    for vm_id in range(n_requests):
        arrival = int(rng.integers(0, n))
        lifetime = int(rng.integers(1, 300))
        vm_type = VM_TYPES[rng.integers(0, len(VM_TYPES))]
        vm_class = (
            VMClass.STABLE if rng.random() < 0.6 else VMClass.DEGRADABLE
        )
        requests.append(
            VMRequest(vm_id, arrival, lifetime, vm_type, vm_class)
        )
    return config, trace, requests


def run_both(config, trace, requests):
    dense = Datacenter(config, trace).run(requests, engine="dense")
    event = Datacenter(config, trace).run(requests, engine="event")
    return dense, event


def assert_identical(dense, event):
    assert dense.records == event.records
    assert list(dense.events) == list(event.events)


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_scenarios(self, seed):
        dense, event = run_both(*random_scenario(seed))
        assert_identical(dense, event)

    @pytest.mark.parametrize(
        "allocation", ["bestfit", "firstfit", "worstfit"]
    )
    def test_allocation_policies(self, allocation):
        dense, event = run_both(
            *random_scenario(3, allocation=allocation)
        )
        assert_identical(dense, event)

    def test_pause_degradable(self):
        dense, event = run_both(
            *random_scenario(4, pause_degradable=True)
        )
        assert_identical(dense, event)
        assert dense.columns.n_paused.sum() > 0
        assert dense.columns.n_resumed.sum() > 0

    def test_server_granular_power_model(self):
        dense, event = run_both(*random_scenario(5, power_model="server"))
        assert_identical(dense, event)

    def test_static_admission(self):
        dense, event = run_both(
            *random_scenario(6, power_relative_admission=False)
        )
        assert_identical(dense, event)

    def test_oscillating_budget_stress(self):
        """Pathological square-wave budget: eviction/resume every flip."""
        values = np.tile([1.0, 1.0, 0.15, 0.15], 250)
        trace = make_trace(values)
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=20, server=ServerSpec(cores=10)),
            pause_degradable=True,
            queue_patience_steps=6,
        )
        rng = np.random.default_rng(7)
        requests = [
            VMRequest(
                vm_id,
                int(rng.integers(0, len(values))),
                int(rng.integers(1, 50)),
                VM_TYPES[rng.integers(0, 2)],
                VMClass.STABLE if rng.random() < 0.5 else VMClass.DEGRADABLE,
            )
            for vm_id in range(1500)
        ]
        dense, event = run_both(config, trace, requests)
        assert_identical(dense, event)
        assert dense.columns.n_evicted.sum() > 0

    def test_patience_expiry_during_dead_span(self):
        """VMs queued just before a long outage must expire on time —
        the expiry wake, not a power wake, triggers the REJECT step."""
        values = np.concatenate([np.ones(5), np.zeros(200), np.ones(20)])
        trace = make_trace(values)
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=2, server=ServerSpec(cores=4)),
            queue_patience_steps=10,
        )
        # Site fits 8 cores; ask for far more so the rest queue at full
        # power, then starve through the outage.
        requests = [
            VMRequest(i, 4, 100, VMType("T4", 4, 16.0), VMClass.STABLE)
            for i in range(6)
        ]
        dense, event = run_both(config, trace, requests)
        assert_identical(dense, event)
        expired_at = np.flatnonzero(dense.columns.n_expired)
        assert expired_at.tolist() == [15]  # queued at 4 + patience 10 + 1

    def test_zero_length_trace(self):
        grid = TimeGrid(START, timedelta(minutes=15), 0)
        trace = PowerTrace(grid, np.array([]), "t", "wind")
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=2, server=ServerSpec(cores=4))
        )
        for engine in ("dense", "event"):
            result = Datacenter(config, trace).run([], engine=engine)
            assert result.records == []

    def test_quiet_workload_tail(self):
        """All activity ends mid-trace; the tail must be skipped and
        still recorded (forward-filled zeros)."""
        values = np.clip(
            0.6 + 0.3 * np.sin(np.arange(3000) / 20.0), 0.0, 1.0
        )
        trace = make_trace(values)
        config = DatacenterConfig(
            cluster=ClusterSpec(n_servers=4, server=ServerSpec())
        )
        requests = [
            VMRequest(i, i, 10, VM_TYPES[0], VMClass.STABLE)
            for i in range(20)
        ]
        dense, event = run_both(config, trace, requests)
        assert_identical(dense, event)
        assert event.columns.running_cores[100:].max() == 0

    def test_unknown_engine_rejected(self):
        config, trace, requests = random_scenario(8, n=10, n_requests=2)
        with pytest.raises(ConfigurationError):
            Datacenter(config, trace).run(requests, engine="warp")


class TestResultCaching:
    def test_series_returns_cached_arrays(self):
        config, trace, requests = random_scenario(9, n=500, n_requests=200)
        result = Datacenter(config, trace).run(requests)
        assert result.power_series() is result.power_series()
        assert result.out_bytes_series() is result.out_bytes_series()
        assert result.out_gb_series() is result.out_gb_series()
        assert result.utilization_series() is result.utilization_series()

    def test_records_lazy_and_stable(self):
        config, trace, requests = random_scenario(10, n=500, n_requests=200)
        result = Datacenter(config, trace).run(requests)
        records = result.records
        assert records is result.records
        assert len(records) == 500
        assert records[0].step == 0

    def test_records_match_columns(self):
        config, trace, requests = random_scenario(11, n=300, n_requests=150)
        result = Datacenter(config, trace).run(requests)
        for step in (0, 150, 299):
            record = result.records[step]
            assert record.running_cores == int(
                result.columns.running_cores[step]
            )
            assert record.n_admitted == int(
                result.columns.n_admitted[step]
            )


class TestCoreBudgetSeries:
    @pytest.mark.parametrize(
        "model_cls", [LinearCorePower, ServerGranularPower]
    )
    def test_matches_scalar_path(self, model_cls):
        cluster = ClusterSpec(n_servers=7, server=ServerSpec(cores=40))
        model = model_cls(cluster)
        rng = np.random.default_rng(12)
        values = rng.uniform(0.0, 1.0, 5000)
        values[:10] = [0.0, 1.0, 0.5, 1e-9, 0.9999, 0.25, 0.75, 0.1, 0.3, 1.0]
        series = model.core_budget_series(values)
        scalar = np.array([model.core_budget(float(v)) for v in values])
        assert np.array_equal(series, scalar)

    def test_series_validates_range(self):
        model = LinearCorePower(ClusterSpec(n_servers=2))
        with pytest.raises(ConfigurationError):
            model.core_budget_series(np.array([0.5, 1.2]))
        with pytest.raises(ConfigurationError):
            model.core_budget_series(np.array([-0.1]))


# ----------------------------------------------------------------------
# Detailed multi-site executor
# ----------------------------------------------------------------------


def detailed_scenario(seed, n=400, n_sites=3, n_apps=25):
    rng = np.random.default_rng(seed)
    grid = TimeGrid(START, timedelta(hours=1), n)
    total = 400
    sites = []
    traces = {}
    for i in range(n_sites):
        t = np.arange(n)
        values = np.clip(
            0.5
            + 0.45 * np.sin(2 * np.pi * (t + i * 20) / 96)
            + rng.normal(0, 0.1, n),
            0.0,
            1.0,
        )
        values[(t % 150) < 10] = 0.0
        name = f"s{i}"
        sites.append(SiteCapacity(name, total, np.floor(values * total)))
        traces[name] = PowerTrace(grid, values, name, "wind", 400.0)
    apps = []
    assignment = {}
    for app_id in range(n_apps):
        arrival = int(rng.integers(0, n - 50))
        duration = int(rng.integers(3, min(150, n - arrival)))
        vm_count = int(rng.integers(2, 15))
        cores = int(rng.choice([2, 4, 8]))
        stable = float(rng.choice([0.0, 0.5, 1.0]))
        apps.append(
            Application(
                app_id, arrival, duration, vm_count,
                VMType(f"T{cores}", cores, cores * 4.0), stable,
            )
        )
        per_site = {}
        left = vm_count
        for i, site in enumerate(sites):
            if i == len(sites) - 1:
                per_site[site.name] = left
            else:
                take = int(rng.integers(0, left + 1))
                per_site[site.name] = take
                left -= take
        assignment[app_id] = per_site
    problem = SchedulingProblem(
        grid, tuple(sites), tuple(apps), bytes_per_core=4 * 2**30
    )
    return problem, Placement(assignment), traces


DETAILED_CLUSTER = ClusterSpec(n_servers=10, server=ServerSpec(cores=40))


class TestDetailedEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_scenarios(self, seed):
        problem, placement, traces = detailed_scenario(seed)
        dense = execute_placement_detailed(
            problem, placement, traces, DETAILED_CLUSTER, engine="dense"
        )
        problem, placement, traces = detailed_scenario(seed)
        event = execute_placement_detailed(
            problem, placement, traces, DETAILED_CLUSTER, engine="event"
        )
        assert dense.records == event.records
        assert dense.homeless_vm_steps == event.homeless_vm_steps

    @pytest.mark.parametrize(
        "order",
        [
            EvictionOrder.FIRST_PLACED,
            EvictionOrder.LARGEST_CORES,
            EvictionOrder.SMALLEST_MEMORY,
        ],
    )
    def test_eviction_orders(self, order):
        problem, placement, traces = detailed_scenario(2)
        dense = execute_placement_detailed(
            problem, placement, traces, DETAILED_CLUSTER,
            engine="dense", eviction_order=order,
        )
        problem, placement, traces = detailed_scenario(2)
        event = execute_placement_detailed(
            problem, placement, traces, DETAILED_CLUSTER,
            engine="event", eviction_order=order,
        )
        assert dense.records == event.records
        assert dense.homeless_vm_steps == event.homeless_vm_steps

    def test_pause_resume_exercised(self):
        """The detailed executor pauses degradable VMs in place and
        resumes them when power returns; both engines must agree on
        every pause/resume count."""
        problem, placement, traces = detailed_scenario(3)
        result = execute_placement_detailed(
            problem, placement, traces, DETAILED_CLUSTER
        )
        paused = sum(
            int(result.columns[name].n_paused.sum())
            for name in result.site_names
        )
        resumed = sum(
            int(result.columns[name].n_resumed.sum())
            for name in result.site_names
        )
        assert paused > 0
        assert resumed > 0

    def test_series_cached_and_records_lazy(self):
        problem, placement, traces = detailed_scenario(4)
        result = execute_placement_detailed(
            problem, placement, traces, DETAILED_CLUSTER
        )
        name = result.site_names[0]
        assert result.out_bytes_series(name) is result.out_bytes_series(name)
        assert (
            result.total_transfer_series() is result.total_transfer_series()
        )
        records = result.records
        assert records is result.records
        assert len(records[name]) == problem.grid.n

    def test_unknown_engine_rejected(self):
        problem, placement, traces = detailed_scenario(5, n=60)
        with pytest.raises(ConfigurationError):
            execute_placement_detailed(
                problem, placement, traces, DETAILED_CLUSTER, engine="warp"
            )


# ----------------------------------------------------------------------
# MIP assembly
# ----------------------------------------------------------------------


def mip_problem(seed, n_sites=6, n_apps=15, n_steps=48):
    rng = np.random.default_rng(seed)
    grid = TimeGrid(START, timedelta(hours=1), n_steps)
    sites = tuple(
        SiteCapacity(
            f"s{i}", 400, np.floor(rng.uniform(0.0, 1.0, n_steps) * 400)
        )
        for i in range(n_sites)
    )
    apps = []
    for app_id in range(n_apps):
        arrival = int(rng.integers(0, n_steps - 2))
        duration = int(rng.integers(1, n_steps - arrival))
        cores = int(rng.choice([2, 4, 8]))
        apps.append(
            Application(
                app_id, arrival, duration, int(rng.integers(1, 20)),
                VMType(f"T{cores}", cores, cores * 4.0),
                float(rng.choice([0.0, 0.3, 1.0])),
            )
        )
    return SchedulingProblem(
        grid, sites, tuple(apps), bytes_per_core=4 * 2**30
    )


def assert_assembly_identical(problem, peak, cap, background, previous):
    layout = _Layout(
        len(problem.apps), len(problem.sites), problem.grid.n,
        peak, reassign=previous is not None,
    )
    vec_matrix, vec_lb, vec_ub = _assemble(
        problem, layout, cap, background, previous
    )
    ref_matrix, ref_lb, ref_ub = _assemble_reference(
        problem, layout, cap, background, previous
    )
    assert vec_matrix.shape == ref_matrix.shape
    assert (vec_matrix - ref_matrix).nnz == 0
    vec_matrix.sort_indices()
    ref_matrix.sort_indices()
    assert np.array_equal(vec_matrix.indptr, ref_matrix.indptr)
    assert np.array_equal(vec_matrix.indices, ref_matrix.indices)
    assert np.array_equal(vec_matrix.data, ref_matrix.data)
    assert np.array_equal(vec_lb, ref_lb)
    assert np.array_equal(vec_ub, ref_ub)


class TestVectorizedAssembly:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_plain(self, seed):
        assert_assembly_identical(
            mip_problem(seed), False, None, None, None
        )

    def test_peak(self):
        assert_assembly_identical(mip_problem(3), True, None, None, None)

    def test_allocation_cap_and_background(self):
        problem = mip_problem(4)
        rng = np.random.default_rng(4)
        n = problem.grid.n
        cap = {
            site.name: rng.uniform(100, 300, n) for site in problem.sites
        }
        background = {
            site.name: np.abs(rng.normal(0, 20, n))
            for site in problem.sites
        }
        assert_assembly_identical(problem, False, cap, background, None)

    def test_reassignment(self):
        problem = mip_problem(5)
        previous = {
            app.app_id: {problem.sites[0].name: min(2, app.vm_count)}
            for app in problem.apps[::2]
        }
        assert_assembly_identical(problem, False, None, None, previous)
        assert_assembly_identical(problem, True, None, None, previous)

    def test_schedule_records_timings(self):
        problem = mip_problem(6, n_sites=3, n_apps=8)
        scheduler = MIPScheduler(time_limit_s=60.0)
        assert scheduler.last_timings is None
        placement = scheduler.schedule(problem)
        placement.validate_complete(problem)
        timings = scheduler.last_timings
        assert timings is not None
        assert timings.assembly_s > 0
        assert timings.solve_s > 0
        assert timings.n_rows > 0
        assert timings.nnz > 0
