"""Tests for the Greedy and MIP schedulers and the co-scheduler."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import ServerSpec
from repro.errors import CapacityError, SchedulingError, SolverError
from repro.forecast import NoisyOracleForecaster
from repro.multisite import SiteGraph
from repro.sched import (
    CoScheduler,
    GreedyScheduler,
    MIPScheduler,
    Placement,
    RollingMIPScheduler,
    SchedulingProblem,
    SiteCapacity,
    consolidate_vms_onto_servers,
    evaluate_placement_overhead,
)
from repro.sched.mip import _round_preserving_sum
from repro.sched.placement import powered_server_count
from repro.traces import (
    PowerTrace,
    default_european_catalog,
    synthesize_catalog_traces,
)
from repro.units import TimeGrid, grid_days
from repro.workload import Application, VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)


def make_grid(n=24):
    return TimeGrid(START, timedelta(hours=1), n)


def make_app(app_id=0, arrival=0, duration=24, vms=10, cores=2,
             memory=8.0, stable=0.5):
    return Application(
        app_id, arrival, duration, vms, VMType(f"T{cores}", cores, memory),
        stable,
    )


def two_site_problem(cap_a, cap_b, apps, total=1000, **kwargs):
    n = len(cap_a)
    sites = (
        SiteCapacity("a", total, np.asarray(cap_a, float)),
        SiteCapacity("b", total, np.asarray(cap_b, float)),
    )
    return SchedulingProblem(
        make_grid(n), sites, tuple(apps),
        kwargs.pop("bytes_per_core", 1.0), **kwargs,
    )


class TestGreedy:
    def test_picks_most_available_power(self):
        problem = two_site_problem(
            np.full(24, 900.0), np.full(24, 100.0),
            [make_app(0, vms=10, cores=2)],
        )
        placement = GreedyScheduler().schedule(problem)
        assert placement.assignment[0] == {"a": 10}

    def test_spills_when_best_site_full(self):
        # Site a has more power but cap limits it to 9 VMs of 100 cores.
        problem = two_site_problem(
            np.full(24, 1000.0), np.full(24, 500.0),
            [make_app(0, vms=12, cores=100)],
            utilization_cap=0.9,
        )
        placement = GreedyScheduler().schedule(problem)
        assert placement.assignment[0]["a"] == 9
        assert placement.assignment[0]["b"] == 3

    def test_accounts_for_earlier_apps(self):
        apps = [
            make_app(0, vms=4, cores=100, duration=24),
            make_app(1, vms=4, cores=100, duration=24),
        ]
        problem = two_site_problem(
            np.full(24, 600.0), np.full(24, 500.0), apps,
            utilization_cap=0.5,  # 500 cores per site
        )
        placement = GreedyScheduler().schedule(problem)
        # First app takes a (most power); second no longer fits there
        # entirely: 400 + 400 > 500.
        a_total = placement.vms_at(0, "a") + placement.vms_at(1, "a")
        assert a_total <= 5

    def test_infeasible_raises(self):
        problem = two_site_problem(
            np.full(24, 100.0), np.full(24, 100.0),
            [make_app(0, vms=50, cores=100)],
        )
        with pytest.raises(SchedulingError):
            GreedyScheduler().schedule(problem)

    def test_complete_assignment(self):
        problem = two_site_problem(
            np.full(24, 700.0), np.full(24, 600.0),
            [make_app(i, vms=7, cores=3) for i in range(10)],
        )
        placement = GreedyScheduler().schedule(problem)
        placement.validate_complete(problem)


class TestMIP:
    def test_validation(self):
        with pytest.raises(SolverError):
            MIPScheduler(peak_weight=-1.0)
        with pytest.raises(SolverError):
            MIPScheduler(time_limit_s=0.0)
        with pytest.raises(SolverError):
            RollingMIPScheduler(window_steps=0)

    def test_complete_assignment(self):
        problem = two_site_problem(
            np.full(24, 700.0), np.full(24, 600.0),
            [make_app(i, vms=7, cores=3) for i in range(6)],
        )
        placement = MIPScheduler().schedule(problem)
        placement.validate_complete(problem)

    def test_avoids_predicted_dip(self):
        # Site a's capacity collapses mid-horizon; an ample site b does
        # not.  The MIP must place the stable app on b.
        cap_a = np.concatenate([np.full(12, 900.0), np.full(12, 0.0)])
        cap_b = np.full(24, 500.0)
        problem = two_site_problem(
            cap_a, cap_b, [make_app(0, vms=10, cores=2, stable=1.0)]
        )
        placement = MIPScheduler().schedule(problem)
        assert placement.assignment[0] == {"b": 10}

    def test_greedy_falls_into_dip_mip_does_not(self):
        cap_a = np.concatenate([np.full(12, 900.0), np.full(12, 0.0)])
        cap_b = np.full(24, 500.0)
        apps = [make_app(0, vms=10, cores=2, stable=1.0)]
        problem = two_site_problem(cap_a, cap_b, apps)
        greedy = GreedyScheduler().schedule(problem)
        mip = MIPScheduler().schedule(problem)
        greedy_cost = sum(
            s.sum()
            for s in evaluate_placement_overhead(problem, greedy).values()
        )
        mip_cost = sum(
            s.sum()
            for s in evaluate_placement_overhead(problem, mip).values()
        )
        assert greedy.assignment[0] == {"a": 10}  # most power now
        assert mip_cost < greedy_cost

    def test_respects_capacity_cap(self):
        # One site with room for everything, another tiny: the cap
        # forces splitting.
        problem = two_site_problem(
            np.full(24, 1000.0), np.full(24, 1000.0),
            [make_app(0, vms=20, cores=50, stable=0.0)],
            utilization_cap=0.6,
        )
        placement = MIPScheduler().schedule(problem)
        for name in ("a", "b"):
            assert placement.vms_at(0, name) * 50 <= 600

    def test_planned_displacement_attached(self):
        problem = two_site_problem(
            np.full(24, 700.0), np.full(24, 600.0),
            [make_app(0, vms=5)],
        )
        placement = MIPScheduler().schedule(problem)
        assert set(placement.planned_displacement) == {"a", "b"}
        assert len(placement.planned_displacement["a"]) == 24

    def test_peak_variant_reduces_peak(self):
        # Deep forced dip: some displacement is unavoidable; peak-aware
        # solve should spread it.
        rng = np.random.default_rng(5)
        cap_a = np.clip(600 + 300 * np.sin(np.arange(48) / 4)
                        + rng.normal(0, 50, 48), 0, 1000)
        cap_b = np.clip(500 - 300 * np.sin(np.arange(48) / 4)
                        + rng.normal(0, 50, 48), 0, 1000)
        apps = [
            make_app(i, arrival=0, duration=48, vms=10, cores=8,
                     stable=1.0)
            for i in range(10)
        ]
        n = 48
        sites = (
            SiteCapacity("a", 1000, cap_a),
            SiteCapacity("b", 1000, cap_b),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps), bytes_per_core=1e9
        )
        total_only = MIPScheduler().schedule(problem)
        peaky = MIPScheduler(peak_weight=100.0).schedule(problem)

        def peak_of(placement):
            per_site = evaluate_placement_overhead(problem, placement)
            series = np.sum(list(per_site.values()), axis=0)
            return series.max()

        # Evaluate realized traffic following each plan's trajectory.
        from repro.sim import execute_placement

        actual = {"a": cap_a, "b": cap_b}
        total_result = execute_placement(problem, total_only, actual)
        peak_result = execute_placement(problem, peaky, actual)
        assert (
            peak_result.total_transfer_series().max()
            <= total_result.total_transfer_series().max() + 1e-6
        )

    def test_relaxed_solve_close_to_integer(self):
        problem = two_site_problem(
            np.full(24, 700.0), np.full(24, 600.0),
            [make_app(i, vms=7, cores=3) for i in range(6)],
        )
        relaxed = MIPScheduler(integer_vms=False).schedule(problem)
        relaxed.validate_complete(problem)

    def test_infeasible_raises(self):
        problem = two_site_problem(
            np.full(24, 10.0), np.full(24, 10.0),
            [make_app(0, vms=100, cores=100)],
        )
        with pytest.raises(SolverError):
            MIPScheduler().schedule(problem)


class TestRoundPreservingSum:
    def test_exact_integers_pass_through(self):
        out = _round_preserving_sum(np.array([3.0, 7.0]), 10)
        assert list(out) == [3, 7]

    def test_fractions_distributed(self):
        out = _round_preserving_sum(np.array([3.6, 6.4]), 10)
        assert out.sum() == 10
        assert list(out) == [4, 6]

    def test_solver_noise_trimmed(self):
        out = _round_preserving_sum(np.array([5.0000001, 5.0000001]), 10)
        assert out.sum() == 10

    def test_zero_target(self):
        out = _round_preserving_sum(np.array([0.2, 0.1]), 0)
        assert out.sum() == 0


class TestWarmStart:
    """HiGHS warm-starting is strictly opportunistic: without the
    ``highspy`` package (or on any seeding failure) the scheduler must
    fall back to the cold ``scipy.optimize.milp`` path, produce an
    identical-quality placement, and report ``warm_start_used=False``."""

    def small_problem(self):
        return two_site_problem(
            np.full(24, 700.0), np.full(24, 600.0),
            [make_app(i, vms=5, cores=2) for i in range(4)],
        )

    def test_timings_field_defaults_off(self):
        scheduler = MIPScheduler()
        placement = scheduler.schedule(self.small_problem())
        placement.validate_complete(self.small_problem())
        assert scheduler.last_timings is not None
        assert scheduler.last_timings.warm_start_used is False

    def test_warm_start_falls_back_cleanly(self):
        problem = self.small_problem()
        scheduler = MIPScheduler(warm_start=True)
        first = scheduler.schedule(problem)
        first.validate_complete(problem)
        # Second solve of the same shape: the previous solution is a
        # candidate seed — used only when highspy accepts it, never
        # required for correctness.
        second = scheduler.schedule(problem)
        second.validate_complete(problem)
        try:
            import highspy  # noqa: F401
        except ImportError:
            assert scheduler.last_timings.warm_start_used is False
        assert first.assignment == second.assignment

    def test_shape_change_resets_seed(self):
        scheduler = MIPScheduler(warm_start=True)
        small = self.small_problem()
        scheduler.schedule(small).validate_complete(small)
        bigger = two_site_problem(
            np.full(24, 700.0), np.full(24, 600.0),
            [make_app(i, vms=5, cores=2) for i in range(7)],
        )
        placement = scheduler.schedule(bigger)
        placement.validate_complete(bigger)

    def test_rolling_mip_accepts_warm_start(self):
        n = 48
        apps = [make_app(0, arrival=0, duration=24, vms=5),
                make_app(1, arrival=24, duration=24, vms=5)]
        sites = (
            SiteCapacity("a", 1000, np.full(n, 700.0)),
            SiteCapacity("b", 1000, np.full(n, 600.0)),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps), bytes_per_core=1.0
        )
        placement = RollingMIPScheduler(
            window_steps=24, warm_start=True
        ).schedule(problem)
        placement.validate_complete(problem)


class TestRollingMIP:
    def test_complete_assignment_across_days(self):
        n = 72  # 3 days hourly
        apps = [
            make_app(i, arrival=24 * (i % 3), duration=24, vms=5)
            for i in range(6)
        ]
        sites = (
            SiteCapacity("a", 1000, np.full(n, 700.0)),
            SiteCapacity("b", 1000, np.full(n, 600.0)),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps), bytes_per_core=1.0
        )
        placement = RollingMIPScheduler(window_steps=24).schedule(problem)
        placement.validate_complete(problem)

    def test_background_load_respected(self):
        # Day-1 apps fill site a; day-2 apps must go to b.
        n = 48
        apps = [
            make_app(0, arrival=0, duration=48, vms=9, cores=100),
            make_app(1, arrival=24, duration=24, vms=9, cores=100),
        ]
        sites = (
            SiteCapacity("a", 1000, np.full(n, 1000.0)),
            SiteCapacity("b", 1000, np.full(n, 900.0)),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps),
            bytes_per_core=1.0, utilization_cap=1.0,
        )
        placement = RollingMIPScheduler(window_steps=24).schedule(problem)
        placement.validate_complete(problem)
        a_load = (
            placement.vms_at(0, "a") * 100 + placement.vms_at(1, "a") * 100
        )
        assert a_load <= 1000

    def test_capacity_provider_used(self):
        n = 48
        calls = []

        def provider(name, issue, horizon):
            calls.append((name, issue, horizon))
            return np.full(horizon, 500.0)

        apps = [make_app(0, arrival=0, duration=24, vms=5),
                make_app(1, arrival=24, duration=24, vms=5)]
        sites = (
            SiteCapacity("a", 1000, np.full(n, 700.0)),
            SiteCapacity("b", 1000, np.full(n, 600.0)),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps), bytes_per_core=1.0
        )
        RollingMIPScheduler(
            window_steps=24, capacity_provider=provider
        ).schedule(problem)
        issues = {issue for _, issue, _ in calls}
        assert issues == {0, 24}


class TestVMPlacementStep:
    def _requests(self, count, cores=4):
        vm_type = VMType(f"T{cores}", cores, cores * 4.0)
        return [
            VMRequest(i, 0, 10, vm_type, VMClass.STABLE)
            for i in range(count)
        ]

    def test_consolidation_minimizes_servers(self):
        # 10 x 4-core VMs on 40-core servers: exactly one server needed.
        servers, mapping = consolidate_vms_onto_servers(
            self._requests(10), n_servers=10
        )
        assert powered_server_count(servers) == 1
        assert len(mapping) == 10

    def test_overflow_to_second_server(self):
        servers, _ = consolidate_vms_onto_servers(
            self._requests(11), n_servers=10
        )
        assert powered_server_count(servers) == 2

    def test_capacity_error_when_too_small(self):
        with pytest.raises(CapacityError):
            consolidate_vms_onto_servers(self._requests(25), n_servers=2)

    def test_mapping_is_consistent(self):
        servers, mapping = consolidate_vms_onto_servers(
            self._requests(7), n_servers=3
        )
        for vm_id, server_id in mapping.items():
            hosted = {vm.vm_id for vm in servers[server_id].vms()}
            assert vm_id in hosted


class TestCoScheduler:
    @pytest.fixture(scope="class")
    def setup(self):
        catalog = default_european_catalog().subset(
            ["UK-wind", "NL-wind", "BE-wind", "DK-wind", "BE-solar"]
        )
        grid = TimeGrid(START, timedelta(hours=1), 72)
        traces = synthesize_catalog_traces(catalog, grid, seed=23)
        graph = SiteGraph(catalog, traces, latency_threshold_ms=50.0)
        cores = {name: 20000 for name in catalog.names}
        return graph, cores

    def test_identify_subgraphs(self, setup):
        graph, cores = setup
        scheduler = CoScheduler(
            graph, cores, NoisyOracleForecaster(seed=1), k_range=(2, 3)
        )
        candidates = scheduler.identify_subgraphs()
        assert candidates
        assert all(2 <= c.k <= 3 for c in candidates)

    def test_schedule_batch_end_to_end(self, setup):
        graph, cores = setup
        scheduler = CoScheduler(
            graph, cores, NoisyOracleForecaster(seed=1), k_range=(2, 3)
        )
        apps = [make_app(i, arrival=0, duration=48, vms=20) for i in range(5)]
        outcome = scheduler.schedule_batch(apps, issue_index=0, horizon=72)
        outcome.placement.validate_complete(outcome.problem)
        assert set(outcome.subgraph.names) <= set(cores)

    def test_sequential_batches_accumulate_load(self, setup):
        graph, cores = setup
        scheduler = CoScheduler(
            graph, cores, NoisyOracleForecaster(seed=1), k_range=(2, 2)
        )
        apps1 = [make_app(0, duration=48, vms=10)]
        apps2 = [make_app(1, duration=48, vms=10)]
        scheduler.schedule_batch(apps1, horizon=72)
        committed_before = {
            k: v.copy() for k, v in scheduler._committed.items()
        }
        scheduler.schedule_batch(apps2, horizon=72)
        total_after = sum(v.sum() for v in scheduler._committed.values())
        total_before = sum(v.sum() for v in committed_before.values())
        assert total_after > total_before

    def test_validation(self, setup):
        graph, cores = setup
        forecaster = NoisyOracleForecaster(seed=1)
        with pytest.raises(SchedulingError):
            CoScheduler(graph, cores, forecaster, k_range=(1, 3))
        with pytest.raises(SchedulingError):
            CoScheduler(graph, {}, forecaster)
        scheduler = CoScheduler(graph, cores, forecaster)
        with pytest.raises(SchedulingError):
            scheduler.schedule_batch([])


class TestCoSchedulerMIPSelection:
    @pytest.fixture(scope="class")
    def setup(self):
        catalog = default_european_catalog().subset(
            ["UK-wind", "NL-wind", "BE-wind", "DK-wind", "BE-solar"]
        )
        grid = TimeGrid(START, timedelta(hours=1), 72)
        traces = synthesize_catalog_traces(catalog, grid, seed=29)
        graph = SiteGraph(catalog, traces, latency_threshold_ms=50.0)
        cores = {name: 20000 for name in catalog.names}
        return graph, cores

    def test_mip_selection_end_to_end(self, setup):
        graph, cores = setup
        scheduler = CoScheduler(
            graph, cores, NoisyOracleForecaster(seed=1),
            k_range=(2, 3), subgraph_selection="mip", mip_shortlist=2,
        )
        apps = [make_app(i, duration=48, vms=20) for i in range(4)]
        outcome = scheduler.schedule_batch(apps, horizon=72)
        outcome.placement.validate_complete(outcome.problem)

    def test_mip_selection_never_worse_than_score_on_plan(self, setup):
        graph, cores = setup
        apps = [make_app(i, duration=48, vms=20) for i in range(4)]
        outcomes = {}
        for mode in ("score", "mip"):
            scheduler = CoScheduler(
                graph, cores, NoisyOracleForecaster(seed=1),
                k_range=(2, 3), subgraph_selection=mode,
                mip_shortlist=3,
            )
            outcomes[mode] = scheduler.schedule_batch(apps, horizon=72)
        from repro.sched import evaluate_placement_overhead

        def plan_cost(outcome):
            per_site = evaluate_placement_overhead(
                outcome.problem, outcome.placement
            )
            return sum(s.sum() for s in per_site.values())

        # MIP selection solved the score pick too (shortlist covers
        # it), so its chosen plan cannot be more expensive.
        assert plan_cost(outcomes["mip"]) <= plan_cost(
            outcomes["score"]
        ) + 1e-6

    def test_validation(self, setup):
        graph, cores = setup
        forecaster = NoisyOracleForecaster(seed=1)
        with pytest.raises(SchedulingError):
            CoScheduler(
                graph, cores, forecaster, subgraph_selection="magic"
            )
        with pytest.raises(SchedulingError):
            CoScheduler(graph, cores, forecaster, mip_shortlist=0)


class TestReplanning:
    def _problem(self, cap_a, cap_b):
        apps = [make_app(i, vms=10, cores=2, stable=1.0) for i in range(4)]
        return two_site_problem(cap_a, cap_b, apps, bytes_per_core=4 * 2**30)

    def test_switch_weight_validation(self):
        problem = self._problem(np.full(24, 500.0), np.full(24, 500.0))
        with pytest.raises(SolverError):
            MIPScheduler().schedule(
                problem, previous_assignment={}, switch_weight=-1.0
            )

    def test_replanning_sticks_when_nothing_changed(self):
        # Symmetric sites: without switching costs, many optima exist;
        # with a previous assignment, the solver must keep it.
        problem = self._problem(np.full(24, 500.0), np.full(24, 500.0))
        previous = {i: {"a": 10} for i in range(4)}
        placement = MIPScheduler().schedule(
            problem, previous_assignment=previous, switch_weight=1.0
        )
        for app_id in range(4):
            assert placement.assignment[app_id] == {"a": 10}

    def test_replanning_moves_when_savings_justify(self):
        # Site a's forecast now collapses: keeping stable apps there
        # costs far more than moving them, so the replan must move.
        cap_a = np.concatenate([np.full(4, 500.0), np.full(20, 0.0)])
        problem = self._problem(cap_a, np.full(24, 500.0))
        previous = {i: {"a": 10} for i in range(4)}
        placement = MIPScheduler().schedule(
            problem, previous_assignment=previous, switch_weight=1.0
        )
        moved = sum(placement.vms_at(i, "b") for i in range(4))
        assert moved == 40

    def test_huge_switch_weight_freezes_placement(self):
        cap_a = np.concatenate([np.full(4, 500.0), np.full(20, 0.0)])
        problem = self._problem(cap_a, np.full(24, 500.0))
        previous = {i: {"a": 10} for i in range(4)}
        placement = MIPScheduler().schedule(
            problem, previous_assignment=previous,
            switch_weight=1e6,
        )
        for app_id in range(4):
            assert placement.assignment[app_id] == {"a": 10}

    def test_new_apps_unconstrained_by_replanning(self):
        # Apps without a previous assignment place freely.
        problem = self._problem(np.full(24, 900.0), np.full(24, 100.0))
        previous = {0: {"b": 10}}  # only app 0 has history
        placement = MIPScheduler().schedule(
            problem, previous_assignment=previous, switch_weight=1.0
        )
        placement.validate_complete(problem)
        assert placement.assignment[0] == {"b": 10}


class TestRollingWithPeak:
    def test_rolling_scheduler_accepts_mip_kwargs(self):
        n = 48
        apps = [make_app(0, arrival=0, duration=24, vms=5),
                make_app(1, arrival=24, duration=24, vms=5)]
        sites = (
            SiteCapacity("a", 1000, np.full(n, 700.0)),
            SiteCapacity("b", 1000, np.full(n, 600.0)),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps), bytes_per_core=1.0
        )
        placement = RollingMIPScheduler(
            window_steps=24, peak_weight=10.0, time_limit_s=20.0
        ).schedule(problem)
        placement.validate_complete(problem)

    def test_rolling_single_window_equals_full_horizon_problem(self):
        # With the window covering the whole horizon and no refresher,
        # rolling degenerates to one full solve.
        n = 24
        apps = [make_app(i, vms=5) for i in range(3)]
        sites = (
            SiteCapacity("a", 1000, np.full(n, 700.0)),
            SiteCapacity("b", 1000, np.full(n, 600.0)),
        )
        problem = SchedulingProblem(
            make_grid(n), sites, tuple(apps), bytes_per_core=1.0
        )
        rolled = RollingMIPScheduler(window_steps=n).schedule(problem)
        direct = MIPScheduler().schedule(problem)
        rolled_demand = {
            a.app_id: sum(rolled.assignment[a.app_id].values())
            for a in apps
        }
        direct_demand = {
            a.app_id: sum(direct.assignment[a.app_id].values())
            for a in apps
        }
        assert rolled_demand == direct_demand
