"""Tests for the experiments layer: Scenario, ArtifactCache, Runner."""

from __future__ import annotations

import json
import subprocess
import sys
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ArtifactCache,
    ComputeSpec,
    ForecasterSpec,
    PolicySpec,
    RunManifest,
    Scenario,
    WorkloadSpec,
    cached_catalog_traces,
    catalog_trace_key,
    run_scenario,
)
from repro.traces import default_european_catalog
from repro.units import TimeGrid, grid_days

START = datetime(2015, 5, 1)


def small_scenario(**overrides) -> Scenario:
    """A fast applications-mode scenario (2 sites, 2 days, 2 policies)."""
    defaults = dict(
        name="smoke",
        sites=("NO-solar", "UK-wind"),
        grid=TimeGrid(START, timedelta(hours=1), 2 * 24),
        workload=WorkloadSpec(count=20, mean_vm_count=8.0),
        policies=(
            PolicySpec("Greedy", "greedy"),
            PolicySpec("MIP", "mip", time_limit_s=10.0),
        ),
        compute=ComputeSpec(cores_per_site=2000),
        seed=7,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenarioSerialization:
    def test_round_trip_equality(self):
        scenario = small_scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_round_trip_preserves_hash(self):
        scenario = small_scenario()
        clone = Scenario.from_json(scenario.to_json())
        assert clone.content_hash() == scenario.content_hash()

    def test_vm_requests_round_trip(self):
        scenario = Scenario(
            name="vm",
            sites=("BE-wind",),
            grid=grid_days(START, 2),
            workload=WorkloadSpec(kind="vm_requests"),
            seed=3,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_wrong_schema_rejected(self):
        data = small_scenario().to_dict()
        data["schema"] = 999
        with pytest.raises(ConfigurationError):
            Scenario.from_dict(data)

    def test_malformed_dict_rejected(self):
        data = small_scenario().to_dict()
        del data["grid"]
        with pytest.raises(ConfigurationError):
            Scenario.from_dict(data)

    def test_seed_derivation(self):
        scenario = small_scenario(seed=10)
        assert scenario.effective_trace_seed == 10
        assert scenario.effective_workload_seed == 11
        assert scenario.effective_forecast_seed == 12
        pinned = small_scenario(seed=10, trace_seed=50, workload_seed=60,
                                forecast_seed=70)
        assert pinned.seeds_dict() == {
            "master": 10, "traces": 50, "workload": 60, "forecast": 70,
        }

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            small_scenario(sites=())
        with pytest.raises(ConfigurationError):
            small_scenario(sites=("UK-wind", "UK-wind"))
        with pytest.raises(ConfigurationError):
            small_scenario(policies=(
                PolicySpec("A", "mip"), PolicySpec("A", "greedy"),
            ))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="quantum")
        with pytest.raises(ConfigurationError):
            ForecasterSpec(kind="oracle-of-delphi")
        with pytest.raises(ConfigurationError):
            PolicySpec("X", kind="simulated-annealing")
        with pytest.raises(ConfigurationError):
            ComputeSpec(cores_per_site=0)
        with pytest.raises(ConfigurationError):
            PolicySpec("X", "mip", decompose="frobnicate:3")
        with pytest.raises(ConfigurationError):
            # Decomposition only applies to plain MIP policies.
            PolicySpec("X", "rolling_mip", decompose="window:24")

    def test_decompose_reaches_scheduler_and_cache_key(self):
        spec = PolicySpec("MIP", "mip", decompose="window:24")
        scheduler = spec.build()
        assert scheduler.decompose is not None
        assert scheduler.decompose.window_steps == 24
        base = small_scenario()
        tweaked = small_scenario(policies=(
            PolicySpec("Greedy", "greedy"),
            PolicySpec("MIP", "mip", time_limit_s=10.0,
                       decompose="window:24"),
        ))
        assert tweaked.solve_key(tweaked.policies[1]) != base.solve_key(
            base.policies[1]
        )


class TestContentHash:
    def test_hash_stable_across_processes(self):
        """The content hash must not depend on PYTHONHASHSEED."""
        scenario = small_scenario()
        program = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from tests.test_experiments import small_scenario\n"
            "print(small_scenario().content_hash())\n"
        )
        root = str(Path(__file__).resolve().parent.parent)
        hashes = set()
        for hashseed in ("1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", program, root],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": hashseed,
                     "PYTHONPATH": str(Path(root) / "src")},
            )
            hashes.add(out.stdout.strip())
        assert hashes == {scenario.content_hash()}

    def test_hash_changes_with_content(self):
        base = small_scenario()
        assert small_scenario(seed=8).content_hash() != base.content_hash()
        renamed = small_scenario(name="other")
        assert renamed.content_hash() != base.content_hash()

    def test_fragment_keys_are_granular(self):
        """Changing a policy must not invalidate traces or forecasts."""
        base = small_scenario()
        tweaked = small_scenario(policies=(
            PolicySpec("Greedy", "greedy"),
            PolicySpec("MIP", "mip", time_limit_s=20.0),
        ))
        assert tweaked.trace_key() == base.trace_key()
        assert tweaked.forecast_key() == base.forecast_key()
        mip = base.policies[1]
        assert tweaked.solve_key(tweaked.policies[1]) != base.solve_key(mip)
        # The untouched policy's solve survives too.
        assert tweaked.solve_key(tweaked.policies[0]) == base.solve_key(
            base.policies[0]
        )

    def test_trace_key_covers_grid_and_seed(self):
        base = small_scenario()
        assert small_scenario(
            grid=TimeGrid(START, timedelta(hours=1), 3 * 24)
        ).trace_key() != base.trace_key()
        assert small_scenario(trace_seed=99).trace_key() != base.trace_key()
        # The scenario name is free to change without losing artifacts.
        assert small_scenario(name="renamed").trace_key() == base.trace_key()


class TestArtifactCache:
    def test_cached_traces_bit_identical(self, tmp_path):
        catalog = default_european_catalog().subset(
            ["NO-solar", "UK-wind"]
        )
        grid = grid_days(START, 2)
        cache = ArtifactCache(tmp_path)
        cold = cached_catalog_traces(catalog, grid, 5, cache)
        assert cache.misses == 1 and cache.hits == 0
        warm = cached_catalog_traces(catalog, grid, 5, cache)
        assert cache.hits == 1
        uncached = cached_catalog_traces(catalog, grid, 5, None)
        for name in catalog.names:
            np.testing.assert_array_equal(
                warm[name].values, cold[name].values
            )
            np.testing.assert_array_equal(
                warm[name].values, uncached[name].values
            )
            assert warm[name].grid == cold[name].grid
            assert warm[name].kind == cold[name].kind
            assert warm[name].capacity_mw == cold[name].capacity_mw

    def test_different_inputs_miss(self, tmp_path):
        catalog = default_european_catalog().subset(["NO-solar"])
        grid = grid_days(START, 1)
        cache = ArtifactCache(tmp_path)
        cached_catalog_traces(catalog, grid, 5, cache)
        assert catalog_trace_key(catalog, grid, 6) != catalog_trace_key(
            catalog, grid, 5
        )
        cached_catalog_traces(catalog, grid, 6, cache)
        assert cache.misses == 2

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        catalog = default_european_catalog().subset(["NO-solar"])
        grid = grid_days(START, 1)
        cache = ArtifactCache(tmp_path)
        original = cached_catalog_traces(catalog, grid, 5, cache)
        key = catalog_trace_key(catalog, grid, 5)
        path = cache._path(key, "npz")
        path.write_bytes(b"not a zipfile")
        recovered = cached_catalog_traces(catalog, grid, 5, cache)
        np.testing.assert_array_equal(
            recovered["NO-solar"].values, original["NO-solar"].values
        )

    def test_json_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get_json(key) is None
        cache.put_json(key, {"x": [1, 2, 3]})
        assert cache.get_json(key) == {"x": [1, 2, 3]}


class TestRunner:
    def test_applications_smoke(self, tmp_path):
        result = run_scenario(
            small_scenario(),
            cache=ArtifactCache(tmp_path / "cache"),
            manifest_dir=tmp_path / "manifests",
        )
        assert result.comparison is not None
        assert set(result.placements) == {"Greedy", "MIP"}
        assert set(result.executions) == {"Greedy", "MIP"}
        assert result.problem is not None
        manifest = result.manifest
        for stage in ("traces", "workload", "forecast", "solve:Greedy",
                      "solve:MIP", "execute:Greedy", "execute:MIP",
                      "analyze"):
            assert manifest.stage(stage).seconds >= 0.0
        assert set(manifest.summary["policies"]) == {"Greedy", "MIP"}
        assert result.manifest_path is not None
        written = json.loads(result.manifest_path.read_text())
        assert written["scenario_hash"] == small_scenario().content_hash()

    def test_repeat_run_hits_cache_and_is_faster(self, tmp_path):
        """The acceptance criterion: a rerun with an unchanged scenario
        reuses every cached stage and cuts wall time by >= 2x."""
        cache = ArtifactCache(tmp_path)
        cold = run_scenario(small_scenario(), cache=cache)
        assert not any(cold.manifest.cache_hits().values())
        warm = run_scenario(small_scenario(), cache=cache)
        hits = warm.manifest.cache_hits()
        assert hits == {
            "traces": True, "forecast": True,
            "solve:Greedy": True, "solve:MIP": True,
        }
        assert warm.manifest.all_cache_hits()
        assert warm.manifest.total_seconds() <= (
            cold.manifest.total_seconds() / 2.0
        )

    def test_cached_run_reproduces_results(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = run_scenario(small_scenario(), cache=cache)
        warm = run_scenario(small_scenario(), cache=cache)
        for name in ("Greedy", "MIP"):
            assert (
                warm.placements[name].assignment
                == cold.placements[name].assignment
            )
            np.testing.assert_array_equal(
                warm.executions[name].total_transfer_series(),
                cold.executions[name].total_transfer_series(),
            )
        assert warm.comparison.summary_dict() == (
            cold.comparison.summary_dict()
        )

    def test_no_cache_mode(self, tmp_path):
        result = run_scenario(small_scenario(), use_cache=False)
        assert result.manifest.cache_dir is None
        assert result.manifest.cache_hits() == {}
        assert not result.manifest.all_cache_hits()
        assert result.comparison is not None

    def test_vm_requests_smoke(self, tmp_path):
        scenario = Scenario(
            name="vm-smoke",
            sites=("BE-wind",),
            grid=grid_days(START, 2),
            workload=WorkloadSpec(kind="vm_requests"),
            seed=3,
        )
        result = run_scenario(
            scenario, cache=ArtifactCache(tmp_path)
        )
        assert set(result.simulations) == {"BE-wind"}
        summary = result.manifest.summary["sites"]["BE-wind"]
        for field in ("out_gb", "in_gb", "peak_step_gb",
                      "silent_power_change_fraction",
                      "wan_busy_fraction"):
            assert field in summary
        assert result.manifest.stage("simulate:BE-wind").seconds >= 0.0

    def test_applications_without_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(small_scenario(policies=()), use_cache=False)


class TestManifest:
    def test_round_trip(self, tmp_path):
        result = run_scenario(
            small_scenario(),
            cache=ArtifactCache(tmp_path / "cache"),
            manifest_dir=tmp_path / "manifests",
        )
        loaded = RunManifest.read(result.manifest_path)
        assert loaded.scenario_hash == result.manifest.scenario_hash
        assert loaded.cache_hits() == result.manifest.cache_hits()
        assert [s.name for s in loaded.stages] == (
            [s.name for s in result.manifest.stages]
        )
        assert Scenario.from_dict(loaded.scenario) == result.scenario

    def test_unknown_stage_lookup(self):
        manifest = RunManifest(
            scenario_name="x", scenario_hash="h", scenario={}, seeds={}
        )
        with pytest.raises(KeyError):
            manifest.stage("nope")
