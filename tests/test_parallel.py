"""Tests for the parallel execution backend (repro.experiments.parallel).

The load-bearing guarantees: worker-count resolution respects the
explicit > ``$REPRO_JOBS`` > fallback chain, every backend produces
identical result summaries, and concurrent workers racing on one cache
key leave a single valid entry (atomic ``os.replace`` writes).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ArtifactCache,
    ComputeSpec,
    FleetManifest,
    PolicySpec,
    Scenario,
    TaskRecord,
    WorkloadSpec,
    auto_jobs,
    resolve_backend,
    resolve_jobs,
    run_scenario,
    run_scenarios,
)
from repro.experiments.parallel import JOBS_ENV
from repro.units import TimeGrid, grid_days

START = datetime(2015, 5, 1)


def tiny_scenarios(n: int = 3) -> list[Scenario]:
    """Seed ensemble of fast single-site vm_requests scenarios."""
    return [
        Scenario(
            name=f"batch-{seed}",
            sites=("BE-wind",),
            grid=grid_days(START, 2),
            workload=WorkloadSpec(kind="vm_requests"),
            seed=seed,
        )
        for seed in range(n)
    ]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(None, fallback=2) == 5

    def test_fallback_then_auto(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None, fallback=2) == 2
        assert resolve_jobs(None) == auto_jobs()

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)

    def test_floor_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1


class TestResolveBackend:
    def test_auto_serial_for_one_worker(self):
        assert resolve_backend("auto", jobs=1) == "serial"

    def test_auto_process_for_many(self):
        assert resolve_backend("auto", jobs=4) == "process"

    def test_explicit_passthrough(self):
        for backend in ("serial", "thread", "process"):
            assert resolve_backend(backend, jobs=4) == backend

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("mpi", jobs=4)


class TestFleetManifest:
    def test_round_trip(self, tmp_path):
        fleet = FleetManifest(backend="process", jobs=4, wall_seconds=2.0)
        fleet.tasks.append(
            TaskRecord("a", "hash-a", seconds=1.5, worker="pid:1")
        )
        fleet.tasks.append(
            TaskRecord("b", "hash-b", seconds=2.5, worker="pid:2")
        )
        fleet.cache_hits = 3
        fleet.cache_lookups = 4
        fleet.stage_seconds["traces"] = 0.5
        path = fleet.write(tmp_path / "fleet.json")
        clone = FleetManifest.read(path)
        assert clone.to_dict() == fleet.to_dict()

    def test_derived_metrics(self):
        fleet = FleetManifest(backend="process", jobs=2, wall_seconds=2.0)
        fleet.tasks = [
            TaskRecord("a", "ha", seconds=1.5),
            TaskRecord("b", "hb", seconds=2.5),
        ]
        fleet.cache_hits, fleet.cache_lookups = 1, 4
        assert fleet.task_seconds() == pytest.approx(4.0)
        assert fleet.speedup() == pytest.approx(2.0)
        assert fleet.cache_hit_rate() == pytest.approx(0.25)

    def test_empty_rates(self):
        fleet = FleetManifest(backend="serial", jobs=1)
        assert fleet.speedup() == 0.0
        assert fleet.cache_hit_rate() == 0.0


class TestBatchDeterminism:
    def test_serial_vs_process_identical_summaries(self, tmp_path):
        """jobs=1 serial and jobs=4 process agree result-for-result."""
        scenarios = tiny_scenarios(3)
        serial = run_scenarios(
            scenarios, jobs=1, backend="serial",
            cache=ArtifactCache(tmp_path / "cache-serial"),
        )
        parallel = run_scenarios(
            scenarios, jobs=4, backend="process",
            cache=ArtifactCache(tmp_path / "cache-process"),
            fleet_manifest_path=tmp_path / "fleet.json",
        )
        assert serial.summaries() == parallel.summaries()
        # Manifests come back in submission order with worker labels.
        names = [m.scenario_name for m in parallel.manifests]
        assert names == [s.name for s in scenarios]
        assert all(
            task.worker and task.worker.startswith("pid:")
            for task in parallel.fleet.tasks
        )
        assert parallel.fleet.backend == "process"
        assert parallel.fleet.jobs == 4
        assert parallel.fleet.wall_seconds > 0
        # The written fleet manifest round-trips.
        clone = FleetManifest.read(parallel.fleet_path)
        assert clone.to_dict() == parallel.fleet.to_dict()

    def test_thread_backend_matches_serial(self, tmp_path):
        scenarios = tiny_scenarios(2)
        serial = run_scenarios(
            scenarios, jobs=1, backend="serial",
            cache=ArtifactCache(tmp_path / "cache-a"),
        )
        threaded = run_scenarios(
            scenarios, jobs=2, backend="thread",
            cache=ArtifactCache(tmp_path / "cache-b"),
        )
        assert serial.summaries() == threaded.summaries()
        assert threaded.fleet.backend == "thread"

    def test_batch_matches_single_runs(self, tmp_path):
        """run_scenarios(serial) reproduces run_scenario one-by-one."""
        scenarios = tiny_scenarios(2)
        batch = run_scenarios(
            scenarios, jobs=1, backend="serial",
            cache=ArtifactCache(tmp_path / "cache-batch"),
        )
        singles = [
            run_scenario(
                scenario, cache=ArtifactCache(tmp_path / "cache-single")
            ).manifest.summary
            for scenario in scenarios
        ]
        assert batch.summaries() == singles

    def test_warm_cache_hits_recorded(self, tmp_path):
        scenarios = tiny_scenarios(2)
        cache = ArtifactCache(tmp_path / "cache")
        cold = run_scenarios(scenarios, jobs=1, cache=cache)
        warm = run_scenarios(scenarios, jobs=1, cache=cache)
        assert cold.summaries() == warm.summaries()
        assert warm.fleet.cache_lookups > 0
        assert warm.fleet.cache_hits == warm.fleet.cache_lookups
        assert warm.fleet.cache_hit_rate() == 1.0
        assert warm.fleet.cache_hit_rate() >= cold.fleet.cache_hit_rate()

    def test_stage_seconds_aggregated(self, tmp_path):
        batch = run_scenarios(
            tiny_scenarios(2), jobs=1,
            cache=ArtifactCache(tmp_path / "cache"),
        )
        assert "traces" in batch.fleet.stage_seconds
        total = sum(
            stage.seconds
            for manifest in batch.manifests
            for stage in manifest.stages
        )
        assert sum(batch.fleet.stage_seconds.values()) == pytest.approx(total)


def _contend_on_key(cache_dir: str, worker_index: int) -> str:
    """Worker body for the cache-contention test (module-level: picklable).

    Every worker writes the *same* deterministic arrays under the same
    key — the race the atomic-write design must survive.
    """
    cache = ArtifactCache(cache_dir)
    arrays = {"values": np.arange(1000, dtype=float)}
    for _ in range(5):
        cache.put_arrays("contended-key", arrays)
    return f"done-{worker_index}"


class TestCacheContention:
    def test_concurrent_same_key_single_valid_entry(self, tmp_path):
        """N processes hammering one key leave exactly one valid entry."""
        cache_dir = str(tmp_path / "shared-cache")
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(
                    _contend_on_key,
                    [cache_dir] * 4,
                    range(4),
                )
            )
        assert sorted(results) == [f"done-{i}" for i in range(4)]
        entries = sorted((tmp_path / "shared-cache").rglob("*.npz"))
        assert len(entries) == 1  # no temp-file debris, no duplicates
        loaded = ArtifactCache(cache_dir).get_arrays("contended-key")
        assert loaded is not None
        np.testing.assert_array_equal(
            loaded["values"], np.arange(1000, dtype=float)
        )


class TestRunnerJobs:
    def test_policy_fanout_matches_serial(self, tmp_path):
        """Runner jobs=2 (thread fan-out of policy solves) is identical
        to the serial run: each policy task builds its own forecaster
        from the scenario seed, so worker scheduling cannot leak in."""
        scenario = Scenario(
            name="fanout",
            sites=("NO-solar", "UK-wind"),
            grid=TimeGrid(START, timedelta(hours=1), 2 * 24),
            workload=WorkloadSpec(count=20, mean_vm_count=8.0),
            policies=(
                PolicySpec("Greedy", "greedy"),
                PolicySpec("MIP", "mip", time_limit_s=10.0),
            ),
            compute=ComputeSpec(cores_per_site=2000),
            seed=7,
        )
        serial = run_scenario(
            scenario, cache=ArtifactCache(tmp_path / "cache-1"), jobs=1
        )
        fanned = run_scenario(
            scenario, cache=ArtifactCache(tmp_path / "cache-2"), jobs=2
        )
        assert serial.manifest.summary == fanned.manifest.summary
        solve_workers = {
            stage.worker
            for stage in fanned.manifest.stages
            if stage.name.startswith("solve:")
        }
        assert all(
            worker and worker.startswith("thread:")
            for worker in solve_workers
        )
        # Stage order stays deterministic (merge order, not finish order).
        assert [s.name for s in serial.manifest.stages] == [
            s.name for s in fanned.manifest.stages
        ]
