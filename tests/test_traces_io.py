"""Tests for trace CSV persistence."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import (
    synthesize_solar,
    trace_from_csv,
    trace_to_csv,
    catalog_traces_to_csv,
)
from repro.units import grid_days


def test_roundtrip(tmp_path, week_grid):
    trace = synthesize_solar(week_grid, seed=3, name="BE-solar")
    path = tmp_path / "be.csv"
    trace_to_csv(trace, path)
    loaded = trace_from_csv(path)
    assert loaded.name == "BE-solar"
    assert loaded.kind == "solar"
    assert loaded.capacity_mw == trace.capacity_mw
    assert loaded.grid.compatible_with(trace.grid)
    np.testing.assert_allclose(loaded.values, trace.values, atol=1e-6)


def test_missing_metadata_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("timestamp,normalized_power\n2020-05-01T00:00:00,0.5\n")
    with pytest.raises(TraceError):
        trace_from_csv(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("# capacity_mw=400.0\n# step_seconds=900.0\n")
    with pytest.raises(TraceError):
        trace_from_csv(path)


def test_malformed_metadata_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("# nonsense\ntimestamp,normalized_power\n")
    with pytest.raises(TraceError):
        trace_from_csv(path)


def test_catalog_write(tmp_path, day_grid):
    traces = {
        "a": synthesize_solar(day_grid, seed=1, name="a"),
        "b": synthesize_solar(day_grid, seed=2, name="b"),
    }
    written = catalog_traces_to_csv(traces, tmp_path / "traces")
    assert len(written) == 2
    assert all(p.exists() for p in written)
    loaded = trace_from_csv(written[0])
    assert loaded.name == "a"


def test_shipped_sample_traces_load():
    """The repository's data/sample_traces CSVs parse and calibrate."""
    from pathlib import Path

    sample_dir = Path(__file__).parent.parent / "data" / "sample_traces"
    paths = sorted(sample_dir.glob("*.csv"))
    assert len(paths) == 3
    for path in paths:
        trace = trace_from_csv(path)
        assert len(trace) == 7 * 96
        assert trace.kind in ("solar", "wind")
        assert 0.0 <= trace.values.min()
        assert trace.values.max() <= 1.0
