"""Golden degenerate and batched-equality tests for the priced grid.

Pins the tentpole contracts of the carbon/price-aware supply layer:

- **Flat-budget degenerate case**: a constant-price, no-threshold,
  ``always``-policy :class:`PricedGridPower` is bit-identical to
  :class:`GridFirmPower` — delivered series and simulation columns,
  across both event engines, open and closed loop, per-site and
  batched fleet — while additionally carrying the cost/carbon ledger
  (total cost == total imports x the constant price).
- **Scalar == batched**: the ``(S,)``-lane branch-select replay in
  ``repro.supply.batch`` reproduces scalar ``dispatch()`` bitwise on
  unlimited-power grids under every purchase policy.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    ServerSpec,
)
from repro.sim import simulate
from repro.sim.fleet import FleetSite
from repro.supply import (
    BatteryDispatch,
    GridFirmPower,
    PricedGridPower,
    SupplyStack,
)
from repro.supply.batch import BatchedDispatch
from repro.supply.stack import SupplyEvaluation
from repro.traces import PowerTrace
from repro.units import TimeGrid
from repro.workload import VMClass, VMRequest, VMType

START = datetime(2020, 5, 1)

#: Evaluation series shared by flat and priced grids (the priced
#: component adds cost_usd / carbon_kg on top, checked separately).
ENERGY_SERIES = (
    "delivered", "soc_mwh", "charge_mwh", "discharge_mwh",
    "grid_import_mwh", "curtailed_mwh",
)


def make_trace(values, capacity_mw=100.0, step_minutes=15, name="t"):
    grid = TimeGrid(
        START, timedelta(minutes=step_minutes), len(values)
    )
    return PowerTrace(
        grid, np.asarray(values, dtype=float), name, "wind", capacity_mw
    )


def dippy_trace(n=400, capacity_mw=100.0, seed=7, name="t"):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    values = np.clip(
        0.55 + 0.4 * np.sin(2 * np.pi * t / 96) + rng.normal(0, 0.1, n),
        0.0,
        1.0,
    )
    values[(t % 120) < 16] = 0.0
    return make_trace(values, capacity_mw, name=name)


def small_config(**overrides):
    defaults = dict(
        cluster=ClusterSpec(n_servers=8, server=ServerSpec(cores=10)),
        queue_patience_steps=50,
    )
    defaults.update(overrides)
    return DatacenterConfig(**defaults)


def requests_for(n_steps, count=120, seed=3, cores=2):
    rng = np.random.default_rng(seed)
    vm_type = VMType(f"T{cores}", cores, cores * 4.0)
    return [
        VMRequest(
            i,
            int(rng.integers(0, n_steps)),
            int(rng.integers(4, 120)),
            vm_type,
            VMClass.STABLE if rng.random() < 0.6 else VMClass.DEGRADABLE,
        )
        for i in range(count)
    ]


PRICE = 40.0
CARBON = 230.0


def flat_stack(n, budget=25.0, max_power=None, battery=True):
    parts = []
    if battery:
        parts.append(BatteryDispatch(30.0, 10.0))
    parts.append(
        GridFirmPower(budget_mwh=budget, max_power_mw=max_power)
    )
    return SupplyStack(tuple(parts))


def priced_stack(n, budget=25.0, max_power=None, battery=True):
    """The degenerate twin: constant price, no thresholds, always-buy."""
    parts = []
    if battery:
        parts.append(BatteryDispatch(30.0, 10.0))
    parts.append(
        PricedGridPower(
            budget_mwh=budget,
            max_power_mw=max_power,
            price_per_mwh=np.full(n, PRICE),
            carbon_per_mwh=np.full(n, CARBON),
            policy="always",
        )
    )
    return SupplyStack(tuple(parts))


def assert_energy_series_equal(flat_ev, priced_ev):
    for name in ENERGY_SERIES:
        np.testing.assert_array_equal(
            getattr(flat_ev, name), getattr(priced_ev, name),
            err_msg=name,
        )


def assert_cost_ledger(priced_ev):
    """Constant-price cost identity: cost == imports x price."""
    assert np.isclose(
        priced_ev.cost_usd.sum(),
        priced_ev.grid_import_mwh.sum() * PRICE,
    )
    assert np.isclose(
        priced_ev.carbon_kg.sum(),
        priced_ev.grid_import_mwh.sum() * CARBON,
    )
    # Cost lands exactly on the import steps.
    np.testing.assert_array_equal(
        priced_ev.cost_usd > 0.0, priced_ev.grid_import_mwh > 0.0
    )


class TestFlatBudgetDegenerate:
    """Constant-price always-policy PricedGridPower == GridFirmPower."""

    def test_open_loop_bitwise(self):
        trace = dippy_trace()
        n = len(trace)
        flat = flat_stack(n).evaluate_open_loop(trace)
        priced = priced_stack(n).evaluate_open_loop(trace)
        assert_energy_series_equal(flat, priced)
        assert_cost_ledger(priced)

    @pytest.mark.parametrize("engine", ["event", "dense"])
    @pytest.mark.parametrize("mode", ["closed", "open"])
    def test_simulation_bitwise(self, engine, mode):
        trace = dippy_trace()
        n = len(trace)
        requests = requests_for(n, count=200)
        config = small_config()
        flat = Datacenter(
            config, trace, supply=flat_stack(n), supply_mode=mode
        ).run(requests, engine=engine)
        priced = Datacenter(
            config, trace, supply=priced_stack(n), supply_mode=mode
        ).run(requests, engine=engine)
        for column in (
            "norm_power", "core_budget", "running_cores", "n_evicted",
            "out_bytes", "in_bytes", "queue_length",
        ):
            np.testing.assert_array_equal(
                getattr(flat.columns, column),
                getattr(priced.columns, column),
                err_msg=column,
            )
        assert_energy_series_equal(flat.supply, priced.supply)
        assert priced.supply.grid_import_total_mwh > 0.0
        assert_cost_ledger(priced.supply)

    def test_power_cap_stays_degenerate(self):
        """A finite max_power_mw binds identically on both paths."""
        trace = dippy_trace()
        n = len(trace)
        requests = requests_for(n, count=200)
        flat = Datacenter(
            small_config(), trace,
            supply=flat_stack(n, max_power=4.0, battery=False),
        ).run(requests)
        priced = Datacenter(
            small_config(), trace,
            supply=priced_stack(n, max_power=4.0, battery=False),
        ).run(requests)
        assert_energy_series_equal(flat.supply, priced.supply)
        step_hours = trace.grid.step_hours
        assert priced.supply.grid_import_mwh.max() <= (
            4.0 * step_hours + 1e-12
        )

    def test_fleet_batched_bitwise(self):
        """The columnar fleet engine replays the degenerate case too."""
        n = 400
        config = small_config()
        traces = [
            dippy_trace(n, capacity_mw=80.0 + 15 * i, seed=11 + i,
                        name=f"s{i}")
            for i in range(3)
        ]
        requests = [
            requests_for(n, count=150, seed=5 + i) for i in range(3)
        ]

        def fleet(stack_for):
            return simulate(
                [
                    FleetSite(
                        name=trace.name,
                        config=config,
                        trace=trace,
                        requests=reqs,
                        supply=stack_for(n),
                        supply_mode="closed",
                    )
                    for trace, reqs in zip(traces, requests)
                ]
            )

        flat = fleet(flat_stack)
        priced = fleet(priced_stack)
        solo = {
            trace.name: Datacenter(
                config, trace, supply=priced_stack(n)
            ).run(reqs)
            for trace, reqs in zip(traces, requests)
        }
        for name in flat:
            assert_energy_series_equal(
                flat[name].supply, priced[name].supply
            )
            assert_cost_ledger(priced[name].supply)
            # Batched fleet == per-site loop, cost series included.
            for series in ENERGY_SERIES + ("cost_usd", "carbon_kg"):
                np.testing.assert_array_equal(
                    getattr(priced[name].supply, series),
                    getattr(solo[name].supply, series),
                    err_msg=series,
                )


def random_trace(n, seed, capacity_mw=80.0, name="r"):
    rng = np.random.default_rng(seed)
    return make_trace(rng.uniform(0.0, 1.0, n), capacity_mw, name=name)


def priced_component(policy, n, seed, budget=60.0):
    """An unlimited-power priced grid with per-step random signals."""
    rng = np.random.default_rng(seed)
    kwargs = dict(
        budget_mwh=budget,
        max_power_mw=None,
        price_per_mwh=rng.uniform(10.0, 120.0, n),
        carbon_per_mwh=rng.uniform(100.0, 300.0, n),
        policy=policy,
    )
    if policy == "threshold":
        kwargs.update(price_threshold=60.0, carbon_threshold=250.0)
    if policy == "dvb":
        kwargs.update(price_threshold=90.0, dvb_capacity_mwh=15.0)
    return PricedGridPower(**kwargs)


class TestScalarBatchedProperty:
    """Satellite: scalar step() == batched lanes, bit for bit."""

    @pytest.mark.parametrize("policy", ["always", "threshold", "dvb"])
    def test_scalar_matches_batched_bitwise(self, policy):
        n, n_sites = 160, 5
        traces = [
            random_trace(n, seed=10 + i, capacity_mw=50.0 + 10 * i,
                         name=f"r{i}")
            for i in range(n_sites)
        ]
        stacks = [
            SupplyStack((
                BatteryDispatch(30.0, 10.0),
                priced_component(policy, n, seed=20 + i),
            ))
            for i in range(n_sites)
        ]
        rng = np.random.default_rng(99)
        demands = rng.uniform(0.0, 1.2, size=(n, n_sites))

        scalar = [
            stack.dispatcher(trace)
            for stack, trace in zip(stacks, traces)
        ]
        lanes = [
            stack.dispatcher(trace)
            for stack, trace in zip(stacks, traces)
        ]
        batched = BatchedDispatch(lanes)
        for t in range(n):
            got = batched.step_many(t, demands[t])
            want = np.array([
                d.dispatch(t, float(demands[t, i]))
                for i, d in enumerate(scalar)
            ])
            np.testing.assert_array_equal(
                got, want, err_msg=f"step {t}"
            )
        batched.finalize()
        for d_scalar, d_lane in zip(scalar, lanes):
            for name in SupplyEvaluation.SERIES_FIELDS:
                np.testing.assert_array_equal(
                    getattr(d_scalar.evaluation, name),
                    getattr(d_lane.evaluation, name),
                    err_msg=name,
                )
            for st_scalar, st_lane in zip(
                d_scalar.states, d_lane.states
            ):
                assert st_scalar.to_dict() == st_lane.to_dict()

    def test_policies_actually_diverge(self):
        """Guard: the three policies buy different energy, so the
        bitwise equalities above exercise three distinct paths."""
        n = 160
        trace = random_trace(n, seed=10, capacity_mw=50.0)
        totals = {}
        for policy in ("always", "threshold", "dvb"):
            # Budget big enough that the policy, not exhaustion, binds.
            stack = SupplyStack(
                (priced_component(policy, n, seed=20, budget=6000.0),)
            )
            d = stack.dispatcher(trace)
            for t in range(n):
                d.dispatch(t, 1.0)
            totals[policy] = d.evaluation.grid_import_mwh.sum()
        assert totals["always"] > totals["threshold"] > 0.0
        assert totals["always"] > totals["dvb"] > 0.0
