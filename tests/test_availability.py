"""Tests for the availability strategies (hot/cold standby, migration)."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.availability import (
    AppProfile,
    ColdStandby,
    HotStandby,
    MigrationOnDemand,
    compare_strategies,
    displacement_events,
)
from repro.errors import ConfigurationError
from repro.traces import PowerTrace, synthesize_solar
from repro.units import TimeGrid, grid_days

START = datetime(2020, 5, 1)
GIB = 2**30


def make_trace(values):
    grid = TimeGrid(START, timedelta(minutes=15), len(values))
    return PowerTrace(grid, np.array(values, float), "t", "wind")


def make_app(**overrides):
    defaults = dict(
        memory_bytes=16 * GIB,
        write_rate_bytes_per_s=50e6,
        cores=4,
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


class TestAppProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_app(memory_bytes=0)
        with pytest.raises(ConfigurationError):
            make_app(write_rate_bytes_per_s=-1)
        with pytest.raises(ConfigurationError):
            make_app(cores=0)
        with pytest.raises(ConfigurationError):
            make_app(boot_seconds=-1)


class TestDisplacementEvents:
    def test_no_events_when_power_high(self):
        trace = make_trace([0.9] * 10)
        assert displacement_events(trace, 0.5) == []

    def test_single_event(self):
        trace = make_trace([0.9, 0.9, 0.1, 0.1, 0.9])
        events = displacement_events(trace, 0.5)
        assert len(events) == 1
        assert events[0].start_step == 2
        assert events[0].end_step == 4
        assert events[0].duration_steps == 2

    def test_event_running_to_end(self):
        trace = make_trace([0.9, 0.1, 0.1])
        events = displacement_events(trace, 0.5)
        assert events[0].end_step == 3

    def test_multiple_events(self):
        trace = make_trace([0.1, 0.9, 0.1, 0.9, 0.1])
        assert len(displacement_events(trace, 0.5)) == 3

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            displacement_events(make_trace([0.5]), 1.5)

    def test_solar_has_daily_events(self):
        grid = grid_days(START, 5)
        trace = synthesize_solar(grid, seed=4)
        events = displacement_events(trace, 0.3)
        # At least one displacement (night) per day.
        assert len(events) >= 5


class TestStrategyCosts:
    def test_hot_standby_scales_with_time(self):
        app = make_app()
        short = HotStandby().cost(app, 3600.0, 1, 600.0)
        long = HotStandby().cost(app, 7200.0, 1, 600.0)
        assert long.network_bytes > short.network_bytes
        assert long.standby_core_seconds == 2 * short.standby_core_seconds

    def test_hot_standby_validation(self):
        with pytest.raises(ConfigurationError):
            HotStandby(sync_overhead=0.5)
        with pytest.raises(ConfigurationError):
            HotStandby().cost(make_app(), -1.0, 0, 0.0)

    def test_cold_standby_scales_with_snapshots(self):
        app = make_app()
        frequent = ColdStandby(snapshot_interval_s=600.0)
        rare = ColdStandby(snapshot_interval_s=7200.0)
        horizon = 24 * 3600.0
        assert (
            frequent.cost(app, horizon, 1, 0.0).network_bytes
            > rare.cost(app, horizon, 1, 0.0).network_bytes
        )
        # But rare snapshots mean more lost work on failover.
        assert (
            rare.cost(app, horizon, 1, 0.0).downtime_seconds
            > frequent.cost(app, horizon, 1, 0.0).downtime_seconds
        )

    def test_cold_standby_validation(self):
        with pytest.raises(ConfigurationError):
            ColdStandby(snapshot_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ColdStandby(incremental_fraction=0.0)

    def test_migration_scales_with_events(self):
        app = make_app()
        one = MigrationOnDemand().cost(app, 86400.0, 1, 600.0)
        five = MigrationOnDemand().cost(app, 86400.0, 5, 3000.0)
        assert five.network_bytes == pytest.approx(5 * one.network_bytes)
        assert five.downtime_seconds == pytest.approx(
            5 * one.downtime_seconds
        )

    def test_migration_no_events_no_cost(self):
        cost = MigrationOnDemand().cost(make_app(), 86400.0, 0, 0.0)
        assert cost.network_bytes == 0.0
        assert cost.downtime_seconds == 0.0

    def test_migration_uses_app_write_rate_as_dirty_rate(self):
        quiet = MigrationOnDemand().cost(
            make_app(write_rate_bytes_per_s=0.0), 86400.0, 1, 600.0
        )
        busy = MigrationOnDemand().cost(
            make_app(write_rate_bytes_per_s=400e6), 86400.0, 1, 600.0
        )
        assert busy.network_bytes > quiet.network_bytes


class TestComparison:
    def test_compare_returns_all_strategies(self):
        trace = make_trace([0.9, 0.1, 0.9, 0.1] * 24)
        costs = compare_strategies(trace, make_app())
        assert set(costs) == {"hot-standby", "cold-standby", "migration"}

    def test_steady_site_favours_migration(self):
        # No dips at all: migration costs nothing on the wire, while
        # hot standby streams continuously.
        trace = make_trace([0.9] * 96 * 7)
        costs = compare_strategies(trace, make_app())
        assert costs["migration"].network_bytes == 0.0
        assert costs["hot-standby"].network_bytes > 0.0

    def test_choppy_site_favours_replication(self):
        # A site that dips every other step: two migrations per dip
        # dwarf the steady write stream for a write-light app.
        values = [0.9, 0.1] * (96 * 7)
        trace = make_trace(values)
        app = make_app(write_rate_bytes_per_s=1e6)  # write-light
        costs = compare_strategies(trace, app)
        assert (
            costs["hot-standby"].network_bytes
            < costs["migration"].network_bytes
        )

    def test_cold_standby_highest_downtime(self):
        # Cold standby pays boot + lost-work (RPO) per event — the
        # worst downtime of the three mechanisms.  Hot-standby failover
        # and converged pre-copy blackouts are both sub-second-scale.
        trace = make_trace([0.9, 0.1] * 96)
        costs = compare_strategies(trace, make_app())
        assert costs["cold-standby"].downtime_seconds > max(
            costs["hot-standby"].downtime_seconds,
            costs["migration"].downtime_seconds,
        )

    def test_only_hot_standby_pins_cores(self):
        trace = make_trace([0.9, 0.1] * 96)
        costs = compare_strategies(trace, make_app())
        assert costs["hot-standby"].standby_core_seconds > 0
        assert costs["cold-standby"].standby_core_seconds == 0
        assert costs["migration"].standby_core_seconds == 0
