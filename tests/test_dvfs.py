"""Tests for the DVFS power-dip absorber."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.dvfs import (
    DVFSStep,
    FrequencyScaling,
    absorb_step,
    dvfs_absorption_summary,
    dvfs_displacement_series,
)
from repro.errors import ConfigurationError
from repro.traces import synthesize_wind
from repro.units import grid_days


class TestFrequencyScaling:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrequencyScaling(min_frequency=0.0)
        with pytest.raises(ConfigurationError):
            FrequencyScaling(min_frequency=1.5)
        with pytest.raises(ConfigurationError):
            FrequencyScaling(power_exponent=0.5)

    def test_cubic_law(self):
        scaling = FrequencyScaling(power_exponent=3.0)
        assert scaling.power_at(1.0) == 1.0
        assert scaling.power_at(0.5) == pytest.approx(0.125)
        assert scaling.frequency_for_power(0.125) == pytest.approx(0.5)

    def test_power_at_validation(self):
        with pytest.raises(ConfigurationError):
            FrequencyScaling().power_at(1.5)
        with pytest.raises(ConfigurationError):
            FrequencyScaling().frequency_for_power(-0.1)

    def test_twenty_percent_cut_costs_seven_percent_speed(self):
        # The classic DVFS selling point with the cubic law.
        scaling = FrequencyScaling(power_exponent=3.0)
        frequency = scaling.frequency_for_power(0.8)
        slowdown = 1.0 / frequency - 1.0
        assert slowdown == pytest.approx(0.077, abs=0.005)


class TestAbsorbStep:
    def test_no_dip_no_action(self):
        step = absorb_step(0.9, 0.7, FrequencyScaling())
        assert step.frequency == 1.0
        assert step.displaced_fraction == 0.0
        assert step.slowdown == 0.0

    def test_zero_load_no_action(self):
        step = absorb_step(0.0, 0.0, FrequencyScaling())
        assert step.displaced_fraction == 0.0

    def test_shallow_dip_fully_absorbed(self):
        # Load 0.7, power 0.6: without DVFS 0.1 displaced; with the
        # cubic law f = (6/7)^(1/3) ~ 0.95 >= 0.6 floor -> all absorbed.
        step = absorb_step(0.6, 0.7, FrequencyScaling())
        assert step.displaced_fraction == 0.0
        assert 0.9 < step.frequency < 1.0
        assert step.slowdown > 0.0

    def test_deep_dip_partially_absorbed(self):
        # Load 0.7, power 0.05: at the 0.6 floor each core draws
        # 0.6^3 = 0.216 -> powered = 0.05/0.216 ~ 0.23 of the cluster.
        scaling = FrequencyScaling(min_frequency=0.6)
        step = absorb_step(0.05, 0.7, scaling)
        assert step.frequency == 0.6
        assert step.displaced_fraction == pytest.approx(
            0.7 - 0.05 / 0.6**3
        )
        assert 0.0 < step.powered_fraction < 1.0

    def test_displacement_never_worse_than_baseline(self):
        scaling = FrequencyScaling()
        for power in np.linspace(0.0, 1.0, 21):
            for load in np.linspace(0.0, 1.0, 11):
                step = absorb_step(float(power), float(load), scaling)
                baseline = max(0.0, load - power)
                assert step.displaced_fraction <= baseline + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            absorb_step(1.5, 0.5, FrequencyScaling())
        with pytest.raises(ConfigurationError):
            absorb_step(0.5, 1.5, FrequencyScaling())

    @given(
        power=st.floats(min_value=0.0, max_value=1.0),
        load=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_step_invariants(self, power, load):
        step = absorb_step(power, load, FrequencyScaling())
        assert 0.0 < step.frequency <= 1.0
        assert 0.0 <= step.powered_fraction <= 1.0 + 1e-9
        assert 0.0 <= step.displaced_fraction <= max(load, 1e-9)
        assert step.slowdown >= 0.0


class TestSeriesAndSummary:
    def test_series_shapes(self):
        grid = grid_days(datetime(2020, 5, 1), 3)
        trace = synthesize_wind(grid, seed=3)
        without, with_dvfs, slowdown = dvfs_displacement_series(
            trace, 0.5
        )
        assert len(without) == len(trace)
        assert np.all(with_dvfs <= without + 1e-9)
        assert np.all(slowdown >= 0.0)

    def test_summary_absorbs_meaningfully(self):
        grid = grid_days(datetime(2020, 5, 1), 7)
        trace = synthesize_wind(grid, seed=3)
        summary = dvfs_absorption_summary(trace, 0.4)
        assert 0.0 < summary["absorbed_fraction"] <= 1.0
        assert summary["displaced_core_steps_with"] <= (
            summary["displaced_core_steps_without"]
        )
        # Slowdown paid stays bounded by the frequency floor.
        assert summary["mean_slowdown_while_absorbing"] <= 1.0 / 0.6 - 1.0

    def test_summary_no_dips(self):
        grid = grid_days(datetime(2020, 5, 1), 1)
        trace = synthesize_wind(grid, seed=3)
        summary = dvfs_absorption_summary(trace, 0.0)
        assert summary["absorbed_fraction"] == 1.0
        assert summary["mean_slowdown_while_absorbing"] == 0.0
