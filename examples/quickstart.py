#!/usr/bin/env python3
"""Quickstart: synthesize renewable traces and measure their variability.

Covers the library's entry points in a couple of minutes of reading:
trace synthesis, the §2.2 variability metrics, multi-site aggregation,
and the §2.1 economics headline.

Run:
    python examples/quickstart.py
"""

from datetime import datetime

from repro import (
    GridPurchase,
    default_european_catalog,
    grid_days,
    stabilize_with_purchase,
    synthesize_catalog_traces,
)
from repro.multisite import EconomicModel, stable_energy_split
from repro.traces.base import aggregate_traces


def main() -> None:
    # One month of 15-minute traces for the paper's Figure-3 trio, with
    # weather correlated by geographic distance.
    catalog = default_european_catalog().subset(
        ["NO-solar", "UK-wind", "PT-wind"]
    )
    grid = grid_days(datetime(2015, 5, 1), days=30)
    traces = synthesize_catalog_traces(catalog, grid, seed=42)

    print("Per-site variability (one month):")
    for name, trace in traces.items():
        print(
            f"  {name:>9}: cov {trace.cov():.2f},"
            f" zero-fraction {trace.zero_fraction():.2f},"
            f" energy {trace.energy_mwh():,.0f} MWh"
        )

    # Aggregating complementary sites flattens variability (§2.3).
    combined = aggregate_traces(list(traces.values()), "NO+UK+PT")
    print(f"\nAggregate of all three: cov {combined.cov():.2f}")

    report = stable_energy_split(traces, list(traces), window_days=3.0)
    print(
        f"Stable energy share (3-day windows):"
        f" {100 * report.stable_fraction:.0f}%"
        f" ({report.stable_energy_mwh:,.0f} of"
        f" {report.total_energy_mwh:,.0f} MWh)"
    )

    # A small firm-energy purchase is highly leveraged (§2.3).
    outcome = stabilize_with_purchase(combined, GridPurchase(4000.0))
    print(
        f"\nBuying {outcome.purchased_mwh:,.0f} MWh of grid energy"
        f" stabilizes a further {outcome.stabilized_variable_mwh:,.0f} MWh"
        f" ({outcome.leverage:.1f}x leverage)"
    )

    # The §2.1 economics: co-location saves the transmission share.
    model = EconomicModel()
    print(
        f"\nCo-locating compute with generation saves"
        f" ~{100 * model.savings_fraction():.0f}% of datacenter"
        f" operating cost (power {100 * model.power_cost_fraction:.0f}%"
        f" x transmission {100 * model.transmission_fraction:.0f}%)"
    )


if __name__ == "__main__":
    main()
