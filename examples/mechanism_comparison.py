#!/usr/bin/env python3
"""Mechanism comparison: everything that can absorb a power dip.

One wind site, four mechanisms, one question — what does each cost?

1. A physical battery smoothing the generation (§1's alternative).
2. DVFS slowing cores through shallow dips (§4's other knob).
3. Availability strategies for stable apps: hot/cold standby vs
   live migration (§3's menu).
4. Harvest (degradable) jobs with checkpointing soaking up the
   variable energy (§2.3's second application class).

Run:
    python examples/mechanism_comparison.py
"""

from datetime import datetime

import numpy as np

from repro import default_european_catalog, grid_days, synthesize_catalog_traces
from repro.availability import AppProfile, compare_strategies
from repro.batch import (
    BatchJob,
    CheckpointPolicy,
    HarvestScheduler,
    variable_capacity_series,
    young_daly_interval,
)
from repro.cluster.dvfs import dvfs_absorption_summary
from repro.multisite import (
    BatterySpec,
    CarbonModel,
    smooth_with_battery,
)
from repro.multisite.variability import windowed_stable_energy

GIB = 2**30


def main() -> None:
    catalog = default_european_catalog().subset(["DK-wind"])
    grid = grid_days(datetime(2015, 4, 1), days=30)
    trace = synthesize_catalog_traces(catalog, grid, seed=17)["DK-wind"]

    stable, variable = windowed_stable_energy(trace, 3.0)
    print(
        f"Site: DK-wind, 30 days, {trace.energy_mwh():,.0f} MWh"
        f" ({100 * stable / (stable + variable):.0f}% stable in"
        " 3-day windows)"
    )

    # 1. Physical battery.
    battery = BatterySpec(capacity_mwh=2000.0, max_power_mw=500.0)
    smoothed = smooth_with_battery(trace, battery)
    stable_b, variable_b = windowed_stable_energy(smoothed.output, 3.0)
    print(
        f"\n[battery] 2,000 MWh battery: stable share"
        f" {100 * stable / (stable + variable):.0f}% ->"
        f" {100 * stable_b / (stable_b + variable_b):.0f}%,"
        f" round-trip losses {smoothed.losses_mwh:,.0f} MWh"
    )

    # 2. DVFS.
    summary = dvfs_absorption_summary(trace, load_fraction=0.4)
    print(
        f"[dvfs]    at 40% load, frequency scaling absorbs"
        f" {100 * summary['absorbed_fraction']:.0f}% of displacement"
        f" for {100 * summary['mean_slowdown_while_absorbing']:.1f}%"
        " mean slowdown"
    )

    # 3. Availability strategies for a stable app.
    app = AppProfile(
        memory_bytes=32 * GIB, write_rate_bytes_per_s=20e6, cores=8
    )
    costs = compare_strategies(trace, app, threshold=0.3)
    print("[standby] 32 GiB stable app, 20 MB/s writes, 30 days:")
    for name, cost in costs.items():
        print(
            f"            {name:>12}: {cost.network_bytes / 1e9:>8,.0f} GB"
            f" wire, {cost.downtime_seconds:>7,.0f} s downtime"
        )

    # 4. Harvest jobs on the variable energy.
    capacity = variable_capacity_series(trace, 2000, 0.2)
    drops = np.flatnonzero(capacity[1:] < 0.5 * capacity[:-1])
    interval = young_daly_interval(
        len(capacity) / max(len(drops), 1), 0.1
    )
    rng = np.random.default_rng(7)
    jobs = [
        BatchJob(i, int(rng.integers(0, 96)), int(rng.integers(2, 16)),
                 float(rng.integers(100, 600)))
        for i in range(50)
    ]
    result = HarvestScheduler(CheckpointPolicy(interval, 0.1)).run(
        jobs, capacity
    )
    print(
        f"[harvest] {len(result.finished_jobs)}/{len(jobs)} batch jobs"
        f" finished on variable energy, goodput"
        f" {100 * result.goodput_fraction():.0f}%"
        f" (Young-Daly checkpoint interval: {interval} steps)"
    )

    # Carbon: why all of this is worth the trouble.
    carbon = CarbonModel()
    consumed = trace.energy_mwh()
    print(
        f"\n[carbon]  serving this energy from the VB instead of the"
        f" grid avoids {carbon.savings_kg(consumed) / 1000:,.0f} tCO2"
        f" over the month"
        f" ({100 * carbon.savings_fraction():.0f}% reduction)"
    )


if __name__ == "__main__":
    main()
