#!/usr/bin/env python3
"""Forecast quality and what it buys the scheduler (§3.1, Figure 5).

Shows the horizon-calibrated forecaster against classic baselines, and
quantifies how the MIP's realized migration overhead degrades as
forecasts get worse — the ablation behind the paper's "spiky but
predictable" argument.

Run:
    python examples/forecast_driven_planning.py
"""

from datetime import datetime, timedelta

from repro import (
    NoisyOracleForecaster,
    TimeGrid,
    default_european_catalog,
    synthesize_catalog_traces,
)
from repro.experiments import (
    ForecasterSpec,
    PolicySpec,
    Scenario,
    WorkloadSpec,
    run_scenario,
)
from repro.forecast import (
    ClimatologyForecaster,
    PersistenceForecaster,
    horizon_mape_profile,
)


def main() -> None:
    catalog = default_european_catalog().subset(
        ["NO-solar", "UK-wind", "PT-wind"]
    )
    grid = TimeGrid(datetime(2015, 4, 1), timedelta(minutes=15), 60 * 96)
    traces = synthesize_catalog_traces(catalog, grid, seed=31)
    wind = traces["UK-wind"]

    horizons = {"3h": 12, "day": 96, "week": 96 * 7}
    print("Forecast MAPE by horizon (UK wind):")
    for label, model in (
        ("calibrated", NoisyOracleForecaster(seed=1)),
        ("persistence", PersistenceForecaster()),
        ("climatology", ClimatologyForecaster()),
    ):
        profile = horizon_mape_profile(model, wind, horizons, 96)
        cells = ", ".join(
            f"{h}: {100 * profile[h]:.0f}%" for h in horizons
        )
        print(f"  {label:>12}: {cells}")

    # What forecast quality buys the scheduler.  Each noise level is
    # its own Scenario — the scenarios share trace and workload seeds,
    # so the artifact cache reuses the synthesized traces across the
    # sweep and only the forecast + solve stages rerun.
    plan_grid = TimeGrid(datetime(2015, 4, 1), timedelta(hours=1), 7 * 24)
    print("\nRealized MIP migration overhead vs forecast noise:")
    for scale in (0.0, 1.0, 3.0):
        scenario = Scenario(
            name=f"forecast-noise-{scale:g}x",
            sites=("NO-solar", "UK-wind", "PT-wind"),
            grid=plan_grid,
            workload=WorkloadSpec(
                count=100, mean_vm_count=40, mean_duration_days=2.5
            ),
            forecaster=ForecasterSpec(noise_scale=0.069 * scale),
            policies=(PolicySpec("MIP", "mip", time_limit_s=60.0),),
            trace_seed=33,
            workload_seed=35,
            forecast_seed=9,
        )
        result = run_scenario(scenario)
        execution = result.executions["MIP"]
        print(
            f"  noise {scale:>3.1f}x:"
            f" {execution.total_transfer_gb():>10,.0f} GB"
        )


if __name__ == "__main__":
    main()
