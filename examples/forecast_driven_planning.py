#!/usr/bin/env python3
"""Forecast quality and what it buys the scheduler (§3.1, Figure 5).

Shows the horizon-calibrated forecaster against classic baselines, and
quantifies how the MIP's realized migration overhead degrades as
forecasts get worse — the ablation behind the paper's "spiky but
predictable" argument.

Run:
    python examples/forecast_driven_planning.py
"""

from datetime import datetime, timedelta

import numpy as np

from repro import (
    MIPScheduler,
    NoisyOracleForecaster,
    TimeGrid,
    default_european_catalog,
    execute_placement,
    generate_applications,
    problem_from_forecasts,
    synthesize_catalog_traces,
)
from repro.forecast import (
    ClimatologyForecaster,
    HorizonNoise,
    PersistenceForecaster,
    horizon_mape_profile,
)


def main() -> None:
    catalog = default_european_catalog().subset(
        ["NO-solar", "UK-wind", "PT-wind"]
    )
    grid = TimeGrid(datetime(2015, 4, 1), timedelta(minutes=15), 60 * 96)
    traces = synthesize_catalog_traces(catalog, grid, seed=31)
    wind = traces["UK-wind"]

    horizons = {"3h": 12, "day": 96, "week": 96 * 7}
    print("Forecast MAPE by horizon (UK wind):")
    for label, model in (
        ("calibrated", NoisyOracleForecaster(seed=1)),
        ("persistence", PersistenceForecaster()),
        ("climatology", ClimatologyForecaster()),
    ):
        profile = horizon_mape_profile(model, wind, horizons, 96)
        cells = ", ".join(
            f"{h}: {100 * profile[h]:.0f}%" for h in horizons
        )
        print(f"  {label:>12}: {cells}")

    # What forecast quality buys the scheduler.
    plan_grid = TimeGrid(datetime(2015, 4, 1), timedelta(hours=1), 7 * 24)
    plan_traces = synthesize_catalog_traces(catalog, plan_grid, seed=33)
    total_cores = {name: 28000 for name in catalog.names}
    apps = generate_applications(
        plan_grid, 100, seed=35, mean_vm_count=40, mean_duration_days=2.5
    )
    actual = {
        name: np.floor(plan_traces[name].values * total_cores[name])
        for name in plan_traces
    }
    print("\nRealized MIP migration overhead vs forecast noise:")
    for scale in (0.0, 1.0, 3.0):
        forecaster = NoisyOracleForecaster(
            noise=HorizonNoise(scale=0.069 * scale), seed=9
        )
        problem = problem_from_forecasts(
            plan_grid, plan_traces, total_cores, apps, forecaster
        )
        placement = MIPScheduler(time_limit_s=60.0).schedule(problem)
        execution = execute_placement(problem, placement, actual)
        print(
            f"  noise {scale:>3.1f}x:"
            f" {execution.total_transfer_gb():>10,.0f} GB"
        )


if __name__ == "__main__":
    main()
