#!/usr/bin/env python3
"""Single-site VB simulation: the §3 migration-overhead experiment.

Builds the paper's setup — a 700-server cluster (40 cores / 512 GB
each) powered by a wind farm, fed by an Azure-like VM arrival stream,
with admission control at 70% of powered capacity — runs two weeks,
and reports the migration traffic the multi-VB design induces.

Run:
    python examples/single_site_migration.py
"""

from datetime import datetime

import numpy as np

from repro import (
    Datacenter,
    DatacenterConfig,
    generate_vm_requests,
    grid_days,
    simulate,
    synthesize_wind,
    workload_matched_to_power,
)
from repro.cluster import EventKind


def main() -> None:
    grid = grid_days(datetime(2015, 5, 1), days=14)
    trace = synthesize_wind(grid, seed=7, name="site")
    config = DatacenterConfig()  # the paper's defaults

    workload = workload_matched_to_power(
        float(trace.values.mean()), config.cluster.total_cores
    )
    requests = generate_vm_requests(grid, workload, seed=11)
    print(
        f"Simulating {config.cluster.n_servers} servers"
        f" ({config.cluster.total_cores:,} cores) for 14 days,"
        f" {len(requests):,} VM arrivals..."
    )

    result = simulate(Datacenter(config, trace), requests)

    out_gb = result.out_gb_series()
    in_gb = result.in_gb_series()
    print("\nMigration traffic:")
    print(f"  out: {out_gb.sum():>10,.0f} GB over {int((out_gb > 0).sum())} steps")
    print(f"  in:  {in_gb.sum():>10,.0f} GB over {int((in_gb > 0).sum())} steps")
    print(f"  largest single 15-min spike: {max(out_gb.max(), in_gb.max()):,.0f} GB")

    silent = result.power_changes_without_migration_fraction()
    print(
        f"\nPower changes absorbed without any migration:"
        f" {100 * silent:.0f}% (paper: >80%)"
    )
    print(
        f"WAN busy fraction at 200 Gbps:"
        f" {100 * result.migration_active_fraction():.1f}%"
        " (paper: 2-4%)"
    )

    events = result.events
    print("\nEvent counts:")
    for kind in EventKind:
        print(f"  {kind.value:>9}: {events.count(kind):,}")

    nonzero = out_gb[out_gb > 0]
    if nonzero.size:
        ratio = np.percentile(nonzero, 99) / np.percentile(nonzero, 50)
        print(f"\nOut-migration spikiness (p99/p50): {ratio:.1f}x")


if __name__ == "__main__":
    main()
