#!/usr/bin/env python3
"""Multi-VB co-scheduling: Greedy vs MIP vs MIP-peak (§3.1).

Builds a latency graph over the European site catalog, lets the
co-scheduler pick a complementary low-latency group, places a batch of
applications with each policy, executes the placements against the
*actual* traces, and prints the Table-1-style comparison.

Run:
    python examples/multi_vb_coscheduler.py
"""

from datetime import datetime, timedelta

from repro import (
    CoScheduler,
    NoisyOracleForecaster,
    SiteGraph,
    TimeGrid,
    default_european_catalog,
    generate_applications,
    synthesize_catalog_traces,
)
from repro.experiments import (
    ComputeSpec,
    PolicySpec,
    Scenario,
    WorkloadSpec,
    run_scenario,
)


def main() -> None:
    catalog = default_european_catalog()
    grid = TimeGrid(datetime(2015, 5, 1), timedelta(hours=1), 7 * 24)
    traces = synthesize_catalog_traces(catalog, grid, seed=21)
    graph = SiteGraph(catalog, traces, latency_threshold_ms=50.0)
    total_cores = {name: 28000 for name in catalog.names}
    forecaster = NoisyOracleForecaster(seed=3)

    # Step 1+2: let the co-scheduler pick a complementary group.
    coscheduler = CoScheduler(
        graph, total_cores, forecaster, k_range=(3, 3),
        candidates_per_k=8,
    )
    apps = generate_applications(
        grid, 200, seed=5, mean_vm_count=40, mean_duration_days=2.5
    )
    outcome = coscheduler.schedule_batch(list(apps), horizon=grid.n)
    group = outcome.subgraph
    print(
        f"Co-scheduler's chosen multi-VB group:"
        f" {' + '.join(group.names)}"
        f" (aggregate cov {group.cov:.2f},"
        f" worst-pair RTT {group.max_latency_ms:.0f} ms)"
    )

    # Step 3: compare site-selection policies on the paper's
    # Figure-3 trio, whose solar/wind mix gives forecasts structure to
    # exploit (the paper's Table-1 setting).  The whole pipeline —
    # traces, workload, forecasts, solves, execution — is described by
    # one Scenario and run (with artifact caching and a run manifest)
    # by the experiments layer.
    trio = ("NO-solar", "UK-wind", "PT-wind")
    print(f"\nPolicy comparison on {' + '.join(trio)}:")
    scenario = Scenario(
        name="coscheduler-table1",
        sites=trio,
        grid=grid,
        workload=WorkloadSpec(
            count=200, mean_vm_count=40, mean_duration_days=2.5
        ),
        policies=(
            PolicySpec("Greedy", "greedy"),
            PolicySpec("MIP", "mip", time_limit_s=60.0),
            PolicySpec(
                "MIP-peak", "mip", peak_weight=50.0, time_limit_s=60.0
            ),
        ),
        compute=ComputeSpec(cores_per_site=28000),
        trace_seed=21,
        workload_seed=5,
        forecast_seed=3,
    )
    result = run_scenario(scenario)
    comparison = result.comparison
    print("\n" + comparison.as_table())
    print(
        f"\nMIP total improvement over Greedy:"
        f" {100 * comparison.improvement_total('MIP', 'Greedy'):.0f}%"
        " (paper: >30%)"
    )
    print(
        f"MIP-peak p99 improvement over Greedy:"
        f" {comparison.improvement_p99('MIP-peak', 'Greedy'):.1f}x"
        " (paper: >4.2x)"
    )
    hits = result.manifest.cache_hits()
    reused = sum(1 for hit in hits.values() if hit)
    print(
        f"\nrun took {result.manifest.total_seconds():.1f}s;"
        f" {reused}/{len(hits)} cached stages reused"
        " (rerun to see the artifact cache kick in)"
    )


if __name__ == "__main__":
    main()
